//! Resource governance: budgets, cooperative cancellation, and the
//! process-wide Ctrl-C flag.
//!
//! The offline solvers are polynomial in the sequence lengths but
//! exponential in `K` and `p`, so any serious instance can blow past
//! wall-clock or memory limits. A [`Budget`] bounds a computation along
//! four axes — wall-clock deadline, explored-state count, approximate
//! peak memory, and a cooperative cancellation flag — and is checked at
//! cheap, deterministic points (DP layer boundaries, search-node
//! expansion batches). When a budget trips, governed solvers return an
//! *anytime* truncated outcome (incumbent upper bound plus frontier
//! lower bound) instead of discarding the work done so far.
//!
//! Cancellation is cooperative: the [`cancel_flag`] static is flipped by
//! the CLI's Ctrl-C handler (see [`install_ctrlc_handler`]) and observed
//! by any in-flight solver carrying a [`Budget`] built with
//! [`Budget::with_global_cancel`]. The handler resets itself after the
//! first signal, so a second Ctrl-C kills the process the default way.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Why a governed computation stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TripReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cooperative cancellation flag was set (e.g. Ctrl-C).
    Cancelled,
    /// The explored state/node count exceeded the cap.
    StateCap {
        /// States explored when the cap tripped.
        states: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The approximate memory watermark exceeded the cap.
    MemoryCap {
        /// Approximate bytes in use when the cap tripped.
        bytes: usize,
        /// The configured cap in bytes.
        cap: usize,
    },
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripReason::Deadline => write!(f, "wall-clock deadline exceeded"),
            TripReason::Cancelled => write!(f, "cancelled"),
            TripReason::StateCap { states, cap } => {
                write!(f, "state cap exceeded ({states} > {cap})")
            }
            TripReason::MemoryCap { bytes, cap } => {
                write!(f, "memory watermark exceeded ({bytes} > {cap} bytes)")
            }
        }
    }
}

/// A resource envelope for one governed computation. The default budget
/// is unlimited; builder methods add limits. Checks are designed to be
/// called at layer boundaries / expansion batches — they cost one
/// `Instant::now()` plus a few loads.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_states: Option<usize>,
    max_mem_bytes: Option<usize>,
    use_global_cancel: bool,
}

impl Budget {
    /// An unlimited budget (never trips).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Trip once `duration` has elapsed from now.
    pub fn with_deadline(mut self, duration: Duration) -> Self {
        self.deadline = Some(Instant::now() + duration);
        self
    }

    /// Trip at an absolute instant.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Trip once the explored state/node count exceeds `cap`.
    pub fn with_max_states(mut self, cap: usize) -> Self {
        self.max_states = Some(cap);
        self
    }

    /// Trip once the caller-estimated memory watermark exceeds `cap`
    /// bytes. The estimate is the caller's (e.g. `states × bytes/state`);
    /// this is a guard rail, not an allocator hook.
    pub fn with_memory_cap(mut self, cap: usize) -> Self {
        self.max_mem_bytes = Some(cap);
        self
    }

    /// Also trip when the process-wide [`cancel_flag`] is set (the
    /// Ctrl-C path).
    pub fn with_global_cancel(mut self) -> Self {
        self.use_global_cancel = true;
        self
    }

    /// Whether this budget can ever trip. Ungoverned fast paths skip
    /// bookkeeping entirely when this is `false`.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
            || self.max_states.is_some()
            || self.max_mem_bytes.is_some()
            || self.use_global_cancel
    }

    /// The configured state cap, if any.
    pub fn max_states(&self) -> Option<usize> {
        self.max_states
    }

    /// Check the budget against the caller's progress counters.
    /// Precedence when several limits are violated at once:
    /// cancellation, deadline, state cap, memory cap.
    pub fn check(&self, states: usize, approx_mem_bytes: usize) -> Result<(), TripReason> {
        if self.use_global_cancel && cancel_requested() {
            return Err(TripReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(TripReason::Deadline);
            }
        }
        if let Some(cap) = self.max_states {
            if states > cap {
                return Err(TripReason::StateCap { states, cap });
            }
        }
        if let Some(cap) = self.max_mem_bytes {
            if approx_mem_bytes > cap {
                return Err(TripReason::MemoryCap {
                    bytes: approx_mem_bytes,
                    cap,
                });
            }
        }
        Ok(())
    }
}

/// The process-wide cooperative cancellation flag.
static CANCEL: AtomicBool = AtomicBool::new(false);

/// The process-wide cancellation flag (set by Ctrl-C or
/// [`request_cancel`]; observed by budgets built with
/// [`Budget::with_global_cancel`]).
pub fn cancel_flag() -> &'static AtomicBool {
    &CANCEL
}

/// Request cooperative cancellation of every governed computation in
/// the process.
pub fn request_cancel() {
    CANCEL.store(true, Ordering::Relaxed);
}

/// Whether cancellation has been requested.
pub fn cancel_requested() -> bool {
    CANCEL.load(Ordering::Relaxed)
}

/// Clear the cancellation flag (tests, or a REPL reusing the process).
pub fn reset_cancel() {
    CANCEL.store(false, Ordering::Relaxed);
}

/// Parse a human duration: bare seconds (`"60"`), or a number with a
/// `ms`/`s`/`m`/`h` suffix (`"500ms"`, `"60s"`, `"2m"`, `"1h"`).
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (digits, unit): (&str, &str) = match s.find(|c: char| !c.is_ascii_digit()) {
        None => (s, "s"),
        Some(i) => (&s[..i], s[i..].trim()),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration {s:?}: expected e.g. 500ms, 60s, 2m, 1h"))?;
    match unit {
        "ms" => Ok(Duration::from_millis(n)),
        "s" => Ok(Duration::from_secs(n)),
        "m" => Ok(Duration::from_secs(n * 60)),
        "h" => Ok(Duration::from_secs(n * 3600)),
        other => Err(format!("bad duration unit {other:?}: use ms, s, m or h")),
    }
}

/// Install a SIGINT (Ctrl-C) handler that flips the process-wide
/// [`cancel_flag`] so in-flight governed solvers checkpoint and report
/// their anytime bracket. The handler resets itself to the OS default
/// after the first signal, so a second Ctrl-C terminates immediately.
/// No-op on non-Unix platforms.
pub fn install_ctrlc_handler() {
    #[cfg(unix)]
    unsafe {
        sigint::install();
    }
}

#[cfg(unix)]
mod sigint {
    //! Raw `signal(2)` binding — the only libc surface we need, declared
    //! directly to avoid a dependency. Both `signal()` and an atomic
    //! store are async-signal-safe.
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        super::CANCEL.store(true, Ordering::Relaxed);
        // Second Ctrl-C falls through to the default (terminate).
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub(super) unsafe fn install() {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(b.check(usize::MAX, usize::MAX).is_ok());
    }

    #[test]
    fn state_cap_trips_past_cap() {
        let b = Budget::unlimited().with_max_states(100);
        assert!(b.is_limited());
        assert!(b.check(100, 0).is_ok());
        assert_eq!(
            b.check(101, 0),
            Err(TripReason::StateCap {
                states: 101,
                cap: 100
            })
        );
    }

    #[test]
    fn memory_cap_trips_past_cap() {
        let b = Budget::unlimited().with_memory_cap(1 << 20);
        assert!(b.check(0, 1 << 20).is_ok());
        assert!(matches!(
            b.check(0, (1 << 20) + 1),
            Err(TripReason::MemoryCap { .. })
        ));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(b.check(0, 0), Err(TripReason::Deadline));
    }

    #[test]
    fn far_deadline_does_not_trip() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert!(b.check(0, 0).is_ok());
    }

    #[test]
    fn cancellation_has_highest_precedence() {
        reset_cancel();
        let b = Budget::unlimited()
            .with_global_cancel()
            .with_deadline(Duration::ZERO)
            .with_max_states(0);
        assert_eq!(b.check(10, 0), Err(TripReason::Deadline));
        request_cancel();
        assert_eq!(b.check(10, 0), Err(TripReason::Cancelled));
        reset_cancel();
        assert_eq!(b.check(10, 0), Err(TripReason::Deadline));
    }

    #[test]
    fn trip_precedence_is_deadline_statecap_memcap() {
        // Every axis exceeded at once: precedence resolves the ambiguity
        // so callers (and their reports) see one canonical reason.
        // (Cancelled outranking all of these is covered by
        // `cancellation_has_highest_precedence`, which owns the global
        // cancel flag — tests in this binary run concurrently.)
        let b = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_max_states(1)
            .with_memory_cap(1);
        assert_eq!(b.check(10, 10), Err(TripReason::Deadline));
        // No deadline: the state cap outranks the memory cap.
        let b = Budget::unlimited().with_max_states(1).with_memory_cap(1);
        assert_eq!(
            b.check(10, 10),
            Err(TripReason::StateCap { states: 10, cap: 1 })
        );
        // Memory cap alone is last in line.
        let b = Budget::unlimited().with_memory_cap(1);
        assert_eq!(
            b.check(10, 10),
            Err(TripReason::MemoryCap { bytes: 10, cap: 1 })
        );
    }

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("60s").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("1h").unwrap(), Duration::from_secs(3600));
        assert_eq!(parse_duration("7").unwrap(), Duration::from_secs(7));
        assert_eq!(parse_duration(" 3s ").unwrap(), Duration::from_secs(3));
        assert!(parse_duration("").is_err());
        assert!(parse_duration("fast").is_err());
        assert!(parse_duration("3days").is_err());
        assert!(parse_duration("-1s").is_err());
    }

    #[test]
    fn trip_reasons_render() {
        assert!(TripReason::Deadline.to_string().contains("deadline"));
        assert!(TripReason::Cancelled.to_string().contains("cancelled"));
        assert!(TripReason::StateCap { states: 5, cap: 4 }
            .to_string()
            .contains("5 > 4"));
    }
}
