//! Incremental (online) simulation: the engine behind `mcp serve`.
//!
//! [`OnlineSimulator`] is the tick engine ([`crate::tick::TickSimulator`])
//! with the workload made *growable*: requests arrive one at a time via
//! [`OnlineSimulator::push`] and the engine commits timesteps as soon as —
//! and only when — they can no longer be affected by future arrivals.
//!
//! ## The safe-horizon commit rule
//!
//! In the paper's model a core's issue times depend only on its own
//! hit/fault history: after a hit at `t` the core's next request issues at
//! `t + 1`, after a fault at `t + τ + 1`. Cores couple *only* through the
//! shared cache state, which depends on the interleaving by model time.
//! Call a core **starved** when it is still open (not
//! [`OnlineSimulator::close`]d) but every admitted request of it has been
//! served. A timestep at model time `t` is safe to commit iff every
//! starved core `j` has `ready_j > t`: a request pushed to `j` later would
//! issue at `ready_j`, strictly after `t`, so it cannot participate in —
//! or reorder — the step being committed. (Ties block: within a timestep
//! cores are served in increasing core order, so a late arrival with
//! `ready_j == t` would have been served in that very step.)
//!
//! Under this rule the committed trace is, at every moment, a prefix of
//! the offline run on whatever the final admitted log turns out to be.
//! After [`OnlineSimulator::close_all`] and a draining
//! [`OnlineSimulator::advance`], the fault counts, fault times and
//! makespan are **bit-identical** to [`crate::sim::simulate`] on the
//! recorded log — this is the serve layer's replay contract, and the
//! tests below pin it.
//!
//! A silent open core therefore throttles the horizon: nothing commits
//! until it receives work or closes. This is inherent to the model, not
//! an implementation artifact; the serve layer surfaces it as backlog.
//!
//! Strategies whose [`CacheStrategy::begin`] reads the full request
//! sequences (offline strategies: FITF, per-part Belady, the LRU-mimic
//! and sacrifice constructions) cannot run online — `begin` here sees
//! `p` empty sequences. The online-safe families (shared LRU/FIFO/CLOCK/
//! LFU/MRU/FWF/LRU-2/random/marking and uniform static partitions) ignore
//! the sequences in `begin`, which the serve replay tests verify
//! empirically per strategy.

use crate::cache::{Cache, CacheError, CellState, Lookup};
use crate::capacity::CapacitySchedule;
use crate::sim::{apply_capacity_step, SimError, SimResult};
use crate::strategy::CacheStrategy;
use crate::types::{ModelError, PageId, SimConfig, Time, Workload};
use std::fmt;

/// Errors from feeding an [`OnlineSimulator`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OnlineError {
    /// The core index is out of range.
    UnknownCore {
        /// The offending core index.
        core: usize,
        /// Number of cores the engine was built with.
        cores: usize,
    },
    /// The core was already closed; its sequence is final.
    CoreClosed {
        /// The offending core index.
        core: usize,
    },
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::UnknownCore { core, cores } => {
                write!(f, "core {core} out of range (p = {cores})")
            }
            OnlineError::CoreClosed { core } => {
                write!(f, "core {core} is closed; cannot admit more requests")
            }
        }
    }
}

impl std::error::Error for OnlineError {}

/// The incremental engine: a [`crate::tick::TickSimulator`] whose workload
/// grows via [`OnlineSimulator::push`] and commits under the safe-horizon
/// rule (module docs).
pub struct OnlineSimulator<S: CacheStrategy> {
    cfg: SimConfig,
    /// The capacity schedule `K(t)` (fixed for constant-K serving).
    /// Change times are folded into [`Self::next_event_time`]; a change
    /// step commits under the same safe-horizon rule as a request step
    /// (a late arrival issuing at or before the change time would alter
    /// the cache state the shrink observes), and changes pending after
    /// the final admitted request are dropped exactly as offline.
    capacity: CapacitySchedule,
    cap_idx: usize,
    /// Scratch for shrink evictions (the online engine keeps no trace).
    voluntary_scratch: Vec<(usize, PageId)>,
    strategy: S,
    cache: Cache,
    /// The admitted log, per core — grows at the tail only.
    seqs: Vec<Vec<PageId>>,
    closed: Vec<bool>,
    pos: Vec<usize>,
    ready: Vec<Time>,
    faults: Vec<u64>,
    hits: Vec<u64>,
    fault_times: Vec<Vec<Time>>,
    makespan: Time,
    last_time: Time,
}

impl<S: CacheStrategy> OnlineSimulator<S> {
    /// Create an engine for `num_cores` open cores. Calls the strategy's
    /// [`CacheStrategy::begin`] with `num_cores` empty sequences (see the
    /// module docs for which strategies that excludes).
    pub fn new(num_cores: usize, cfg: SimConfig, strategy: S) -> Result<Self, SimError> {
        OnlineSimulator::with_capacity(
            num_cores,
            cfg,
            CapacitySchedule::fixed(cfg.cache_size),
            strategy,
        )
    }

    /// [`OnlineSimulator::new`] with cache capacity following `capacity`
    /// (`mcp serve --capacity`). Same validation as
    /// [`crate::sim::Simulator::with_capacity`]; the replay contract
    /// extends verbatim: the finished result is bit-identical to
    /// [`crate::sim::simulate_with_capacity`] on the admitted log.
    pub fn with_capacity(
        num_cores: usize,
        cfg: SimConfig,
        capacity: CapacitySchedule,
        mut strategy: S,
    ) -> Result<Self, SimError> {
        let empty = Workload::new(vec![Vec::new(); num_cores])?;
        cfg.validate(&empty)?;
        if capacity.initial_k() != cfg.cache_size {
            return Err(ModelError::CapacityMismatch {
                config_k: cfg.cache_size,
                initial_k: capacity.initial_k(),
            }
            .into());
        }
        if capacity.min_k() < num_cores {
            return Err(ModelError::CapacityBelowCores {
                min_k: capacity.min_k(),
                cores: num_cores,
            }
            .into());
        }
        strategy.begin(&empty, &cfg);
        let mut cache = Cache::new(capacity.max_k(), num_cores);
        cache.set_limit(cfg.cache_size);
        Ok(OnlineSimulator {
            cfg,
            capacity,
            cap_idx: 0,
            voluntary_scratch: Vec::new(),
            strategy,
            cache,
            seqs: vec![Vec::new(); num_cores],
            closed: vec![false; num_cores],
            pos: vec![0; num_cores],
            ready: vec![1; num_cores],
            faults: vec![0; num_cores],
            hits: vec![0; num_cores],
            fault_times: vec![Vec::new(); num_cores],
            makespan: 0,
            last_time: 0,
        })
    }

    /// Number of cores `p`.
    pub fn num_cores(&self) -> usize {
        self.seqs.len()
    }

    /// Admit one request at the tail of `core`'s sequence.
    pub fn push(&mut self, core: usize, page: PageId) -> Result<(), OnlineError> {
        if core >= self.seqs.len() {
            return Err(OnlineError::UnknownCore {
                core,
                cores: self.seqs.len(),
            });
        }
        if self.closed[core] {
            return Err(OnlineError::CoreClosed { core });
        }
        self.seqs[core].push(page);
        Ok(())
    }

    /// Declare `core`'s sequence final: no more pushes, and the horizon
    /// stops waiting on it. Idempotent.
    pub fn close(&mut self, core: usize) -> Result<(), OnlineError> {
        if core >= self.seqs.len() {
            return Err(OnlineError::UnknownCore {
                core,
                cores: self.seqs.len(),
            });
        }
        self.closed[core] = true;
        Ok(())
    }

    /// Close every core (end of stream).
    pub fn close_all(&mut self) {
        self.closed.fill(true);
    }

    /// Whether `core` is closed.
    pub fn is_closed(&self, core: usize) -> bool {
        self.closed[core]
    }

    /// Requests served so far, per core (`pos` in tick-engine terms).
    pub fn positions(&self) -> &[usize] {
        &self.pos
    }

    /// Time at which each core's next request issues.
    pub fn ready_times(&self) -> &[Time] {
        &self.ready
    }

    /// Faults so far, per core.
    pub fn faults(&self) -> &[u64] {
        &self.faults
    }

    /// Hits so far, per core.
    pub fn hits(&self) -> &[u64] {
        &self.hits
    }

    /// Completion time of the last request served so far.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Admitted-but-unserved requests, total.
    pub fn backlog(&self) -> usize {
        self.seqs
            .iter()
            .zip(&self.pos)
            .map(|(s, &p)| s.len() - p)
            .sum()
    }

    /// Requests admitted so far, total.
    pub fn admitted(&self) -> usize {
        self.seqs.iter().map(Vec::len).sum()
    }

    /// `true` once every core is closed and every admitted request served.
    pub fn finished(&self) -> bool {
        self.closed.iter().all(|&c| c)
            && self.seqs.iter().zip(&self.pos).all(|(s, &p)| p >= s.len())
    }

    /// The candidate next timestep over *admitted* unserved requests, with
    /// the same voluntary-time override as the offline engines.
    fn next_event_time(&self) -> Option<Time> {
        let next_request = (0..self.seqs.len())
            .filter(|&j| self.pos[j] < self.seqs[j].len())
            .map(|j| self.ready[j])
            .min()?;
        let mut t = next_request;
        if let Some(vt) = self.strategy.next_voluntary_time() {
            if vt > self.last_time && vt < t {
                t = vt;
            }
        }
        // A pending capacity change only becomes an event once some
        // admitted request remains unserved (the `min()?` above): that
        // mirrors the offline engines, where post-final changes are
        // dropped, and keeps the horizon rule in charge of when the
        // change step may commit.
        if let Some((ct, _)) = self.capacity.next_change_after(self.last_time) {
            if ct < t {
                t = ct;
            }
        }
        Some(t)
    }

    /// Is committing a step at `t` unsafe because a starved open core
    /// could still receive a request issuing at or before `t`?
    fn horizon_blocked(&self, t: Time) -> bool {
        (0..self.seqs.len())
            .any(|j| !self.closed[j] && self.pos[j] >= self.seqs[j].len() && self.ready[j] <= t)
    }

    /// Commit every step the safe horizon allows. Returns the number of
    /// requests served; stopping with admitted backlog left (or with open
    /// starved cores) means more input — or closes — are needed before
    /// model time can progress.
    pub fn advance(&mut self) -> Result<usize, SimError> {
        let mut served = 0;
        loop {
            let Some(t) = self.next_event_time() else {
                return Ok(served);
            };
            if self.horizon_blocked(t) {
                return Ok(served);
            }
            served += self.step_at(t)?;
        }
    }

    /// One committed timestep at `t` — a faithful transcription of the
    /// tick engine's `step_inner` over the admitted log. Returns the
    /// number of requests served at `t`.
    fn step_at(&mut self, t: Time) -> Result<usize, SimError> {
        self.last_time = t;
        self.cache.promote_due(t);

        // Pin every page requested this parallel step before the strategy
        // gets to evict voluntarily (R(x) ⊆ C', Algorithms 1 and 2).
        for core in 0..self.seqs.len() {
            if self.pos[core] < self.seqs[core].len() && self.ready[core] == t {
                self.cache.pin_page(self.seqs[core][self.pos[core]]);
            }
        }

        // Capacity changes due at `t` (same placement as offline: after
        // pins, before strategy voluntary evictions).
        self.voluntary_scratch.clear();
        apply_capacity_step(
            t,
            &self.capacity,
            &mut self.cap_idx,
            &mut self.cache,
            &mut self.strategy,
            &mut self.voluntary_scratch,
        )?;

        for cell in self.strategy.voluntary_evictions(t, &self.cache) {
            if !matches!(self.cache.cell(cell), CellState::Present(_)) {
                return Err(SimError::BadVoluntaryEviction { cell });
            }
            let page = self.cache.evict(cell)?;
            self.strategy.on_evict(page, cell);
        }

        let mut served = 0;
        for core in 0..self.seqs.len() {
            if self.pos[core] >= self.seqs[core].len() || self.ready[core] != t {
                continue;
            }
            let page = self.seqs[core][self.pos[core]];
            match self.cache.lookup(page) {
                Lookup::Present { .. } => {
                    self.hits[core] += 1;
                    self.strategy.on_hit(core, page, t, &self.cache);
                    self.ready[core] = t + 1;
                    self.makespan = self.makespan.max(t);
                }
                Lookup::Fetching { .. } => {
                    self.faults[core] += 1;
                    self.fault_times[core].push(t);
                    self.strategy
                        .on_shared_fetch_miss(core, page, t, &self.cache);
                    self.ready[core] = t + self.cfg.tau + 1;
                    self.makespan = self.makespan.max(t + self.cfg.tau);
                }
                Lookup::Absent => {
                    self.faults[core] += 1;
                    self.fault_times[core].push(t);
                    let cell = self.strategy.choose_cell(core, page, t, &self.cache);
                    match self.cache.cell(cell) {
                        CellState::Present(_) => {
                            let victim = self.cache.evict(cell)?;
                            self.strategy.on_evict(victim, cell);
                        }
                        CellState::Empty => {}
                        CellState::Fetching { .. } => {
                            return Err(SimError::Cache(CacheError::EvictFetching { cell }));
                        }
                    }
                    self.cache
                        .start_fetch(cell, page, core, t + self.cfg.tau + 1)?;
                    self.strategy.on_fault(core, page, t, cell, &self.cache);
                    self.ready[core] = t + self.cfg.tau + 1;
                    self.makespan = self.makespan.max(t + self.cfg.tau);
                }
            }
            self.pos[core] += 1;
            served += 1;
        }
        self.cache.clear_pins();
        Ok(served)
    }

    /// A copy of the admitted log as a [`Workload`] — the replay trace.
    pub fn admitted_log(&self) -> Workload {
        Workload::new(self.seqs.clone()).expect("p >= 1 by construction")
    }

    /// Consume the engine, returning the aggregate result and the admitted
    /// log. The result equals [`crate::sim::simulate`] on that log when
    /// the engine is [`OnlineSimulator::finished`]; callers wanting the
    /// replay contract should `close_all` + `advance` first.
    pub fn finish(self) -> (SimResult, Workload) {
        let log = Workload::new(self.seqs).expect("p >= 1 by construction");
        (
            SimResult {
                faults: self.faults,
                hits: self.hits,
                makespan: self.makespan,
                fault_times: self.fault_times,
                config: self.cfg,
            },
            log,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;

    /// Evict the lowest-indexed evictable cell.
    struct FirstFit;
    impl CacheStrategy for FirstFit {
        fn name(&self) -> String {
            "FirstFit".into()
        }
        fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
            cache
                .empty_cell()
                .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
                .expect("victim exists when K >= p")
        }
    }

    /// Global-LRU over stamps, implemented locally so mcp-core's tests
    /// need no policies crate.
    #[derive(Default)]
    struct MiniLru {
        stamps: std::collections::HashMap<PageId, u64>,
        clock: u64,
    }
    impl MiniLru {
        fn touch(&mut self, page: PageId) {
            self.clock += 1;
            self.stamps.insert(page, self.clock);
        }
    }
    impl CacheStrategy for MiniLru {
        fn name(&self) -> String {
            "MiniLru".into()
        }
        fn on_hit(&mut self, _c: usize, page: PageId, _t: Time, _cache: &Cache) {
            self.touch(page);
        }
        fn on_fault(&mut self, _c: usize, page: PageId, _t: Time, _cell: usize, _cache: &Cache) {
            self.touch(page);
        }
        fn on_shared_fetch_miss(&mut self, _c: usize, page: PageId, _t: Time, _cache: &Cache) {
            self.touch(page);
        }
        fn on_evict(&mut self, page: PageId, _cell: usize) {
            self.stamps.remove(&page);
        }
        fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
            if let Some(cell) = cache.empty_cell() {
                return cell;
            }
            let (cell, _, _) = cache
                .evictable_cells()
                .min_by_key(|(cell, p, _)| (self.stamps.get(p).copied().unwrap_or(0), *cell))
                .expect("cache full implies a victim");
            cell
        }
    }

    /// Flush-when-full with a declared voluntary flush time, to exercise
    /// the voluntary-eviction path online.
    struct Flusher {
        at: Time,
    }
    impl CacheStrategy for Flusher {
        fn name(&self) -> String {
            "Flusher".into()
        }
        fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
            cache
                .empty_cell()
                .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
                .expect("victim exists")
        }
        fn next_voluntary_time(&self) -> Option<Time> {
            Some(self.at)
        }
        fn voluntary_evictions(&mut self, t: Time, cache: &Cache) -> Vec<usize> {
            if t == self.at {
                cache.evictable_cells().map(|(i, _, _)| i).collect()
            } else {
                Vec::new()
            }
        }
    }

    fn w(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Feed `workload` into an online engine under a seeded interleaving
    /// of pushes, closes and advances, then assert the finished result is
    /// bit-identical to the offline run.
    fn check_online<S: CacheStrategy>(
        workload: &Workload,
        cfg: SimConfig,
        offline: S,
        online: S,
        seed: u64,
    ) {
        let expect = simulate(workload, cfg, offline).unwrap();
        let mut eng = OnlineSimulator::new(workload.num_cores(), cfg, online).unwrap();
        let mut cursor = vec![0usize; workload.num_cores()];
        let mut rng = seed;
        loop {
            let open: Vec<usize> = (0..workload.num_cores())
                .filter(|&j| cursor[j] < workload.len(j))
                .collect();
            if open.is_empty() {
                break;
            }
            rng = splitmix64(rng);
            let j = open[(rng % open.len() as u64) as usize];
            // Push a random-length burst from core j, then sometimes advance.
            rng = splitmix64(rng);
            let burst = 1 + (rng % 3) as usize;
            for _ in 0..burst {
                if cursor[j] < workload.len(j) {
                    eng.push(j, workload.sequence(j)[cursor[j]]).unwrap();
                    cursor[j] += 1;
                }
            }
            rng = splitmix64(rng);
            if rng.is_multiple_of(2) {
                eng.advance().unwrap();
            }
        }
        eng.close_all();
        eng.advance().unwrap();
        assert!(eng.finished());
        let (got, log) = eng.finish();
        assert_eq!(&log, workload, "admitted log must equal the input");
        assert_eq!(got, expect, "online result diverged (seed {seed})");
    }

    #[test]
    fn matches_offline_firstfit_and_lru() {
        let cases = [
            (w(&[&[1, 2, 1, 2], &[7, 7, 8, 8]]), 3, 2),
            (w(&[&[1], &[1]]), 2, 4),
            (w(&[&[1, 2, 3, 1, 2, 3], &[7, 8, 7, 8]]), 4, 0),
            (
                w(&[&[1, 2, 3, 4, 1, 2, 3, 4], &[5, 6, 5, 6], &[9, 9, 9]]),
                5,
                3,
            ),
            (w(&[&[], &[]]), 2, 3),
        ];
        for (wl, k, tau) in cases {
            let cfg = SimConfig::new(k, tau);
            for seed in 0..8 {
                check_online(&wl, cfg, FirstFit, FirstFit, seed);
                check_online(
                    &wl,
                    cfg,
                    MiniLru::default(),
                    MiniLru::default(),
                    seed ^ 0xABCD,
                );
            }
        }
    }

    #[test]
    fn matches_offline_with_voluntary_evictions() {
        let wl = w(&[&[1, 2, 3, 1, 2, 3], &[7, 8, 7, 8]]);
        let cfg = SimConfig::new(4, 2);
        for at in [2, 5, 9] {
            for seed in 0..4 {
                check_online(&wl, cfg, Flusher { at }, Flusher { at }, seed);
            }
        }
    }

    #[test]
    fn randomized_interleavings_large() {
        // A bigger seeded instance: 3 cores, overlapping pages so the
        // shared-fetch-miss path fires under tau > 0.
        let mut seqs: Vec<Vec<u32>> = vec![Vec::new(); 3];
        let mut rng = 0xfeed_beefu64;
        for seq in &mut seqs {
            for _ in 0..120 {
                rng = splitmix64(rng);
                seq.push((rng % 12) as u32);
            }
        }
        let wl = Workload::from_u32(seqs).unwrap();
        let cfg = SimConfig::new(6, 3);
        for seed in 0..6 {
            check_online(&wl, cfg, MiniLru::default(), MiniLru::default(), seed);
        }
    }

    #[test]
    fn horizon_blocks_on_silent_open_core() {
        let mut eng = OnlineSimulator::new(2, SimConfig::new(2, 1), FirstFit).unwrap();
        eng.push(0, PageId(1)).unwrap();
        eng.push(0, PageId(2)).unwrap();
        // Core 1 is open and starved with ready = 1 <= any candidate t:
        // nothing may commit yet.
        assert_eq!(eng.advance().unwrap(), 0);
        assert_eq!(eng.backlog(), 2);
        // Closing core 1 releases the horizon.
        eng.close(1).unwrap();
        assert_eq!(eng.advance().unwrap(), 2);
        assert_eq!(eng.backlog(), 0);
        assert!(!eng.finished(), "core 0 still open");
        eng.close_all();
        assert!(eng.finished());
    }

    #[test]
    fn partial_commits_are_prefixes() {
        // Serving as input arrives must never overcommit: after each
        // advance the served prefix agrees with the final offline run.
        let wl = w(&[&[1, 2, 3, 1, 2, 3], &[7, 8, 9, 7, 8, 9]]);
        let cfg = SimConfig::new(4, 2);
        let expect = simulate(&wl, cfg, MiniLru::default()).unwrap();
        let mut eng = OnlineSimulator::new(2, cfg, MiniLru::default()).unwrap();
        for i in 0..6 {
            eng.push(0, wl.sequence(0)[i]).unwrap();
            eng.push(1, wl.sequence(1)[i]).unwrap();
            eng.advance().unwrap();
            for core in 0..2 {
                let n = eng.fault_times[core].len();
                assert_eq!(
                    eng.fault_times[core],
                    expect.fault_times[core][..n],
                    "fault-time prefix diverged at i={i} core={core}"
                );
            }
        }
        eng.close_all();
        eng.advance().unwrap();
        let (got, _) = eng.finish();
        assert_eq!(got, expect);
    }

    #[test]
    fn push_and_close_are_guarded() {
        let mut eng = OnlineSimulator::new(2, SimConfig::new(2, 0), FirstFit).unwrap();
        assert!(matches!(
            eng.push(5, PageId(1)),
            Err(OnlineError::UnknownCore { core: 5, cores: 2 })
        ));
        eng.close(0).unwrap();
        assert!(matches!(
            eng.push(0, PageId(1)),
            Err(OnlineError::CoreClosed { core: 0 })
        ));
        assert!(eng.close(9).is_err());
        // Errors render.
        assert!(OnlineError::CoreClosed { core: 0 }
            .to_string()
            .contains("closed"));
        assert!(OnlineError::UnknownCore { core: 5, cores: 2 }
            .to_string()
            .contains("out of range"));
    }

    #[test]
    fn capacity_replay_matches_offline() {
        // The replay contract under a capacity schedule: pushing the
        // workload through in seeded interleavings and finishing must be
        // bit-identical to the offline capacity run on the same log.
        let wl = w(&[&[1, 2, 3, 1, 2, 3, 1, 2], &[7, 8, 9, 7, 8, 9, 7, 8]]);
        let cfg = SimConfig::new(5, 2);
        for spec in ["5,3@4", "5,2@3,5@9", "5,4@2,3@6,2@11"] {
            let cap: CapacitySchedule = spec.parse().unwrap();
            let expect =
                crate::sim::simulate_with_capacity(&wl, cfg, cap.clone(), MiniLru::default())
                    .unwrap();
            for seed in 0..6u64 {
                let mut eng = OnlineSimulator::with_capacity(
                    wl.num_cores(),
                    cfg,
                    cap.clone(),
                    MiniLru::default(),
                )
                .unwrap();
                let mut cursor = vec![0usize; wl.num_cores()];
                let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1;
                loop {
                    let open: Vec<usize> = (0..wl.num_cores())
                        .filter(|&j| cursor[j] < wl.len(j))
                        .collect();
                    if open.is_empty() {
                        break;
                    }
                    rng = splitmix64(rng);
                    let j = open[(rng % open.len() as u64) as usize];
                    eng.push(j, wl.sequence(j)[cursor[j]]).unwrap();
                    cursor[j] += 1;
                    rng = splitmix64(rng);
                    if rng.is_multiple_of(2) {
                        eng.advance().unwrap();
                    }
                }
                eng.close_all();
                eng.advance().unwrap();
                assert!(eng.finished());
                let (got, log) = eng.finish();
                assert_eq!(&log, &wl);
                assert_eq!(
                    got, expect,
                    "capacity online diverged (cap {spec} seed {seed})"
                );
            }
        }
    }

    #[test]
    fn capacity_change_respects_horizon() {
        // A pending capacity drop must not commit while a starved open
        // core could still receive a request issuing at or before it.
        let cap: CapacitySchedule = "3,2@2".parse().unwrap();
        let mut eng =
            OnlineSimulator::with_capacity(2, SimConfig::new(3, 0), cap, FirstFit).unwrap();
        eng.push(0, PageId(1)).unwrap();
        eng.push(0, PageId(2)).unwrap();
        eng.push(0, PageId(3)).unwrap();
        // Core 1 open and starved: nothing commits, including the t=2 drop.
        assert_eq!(eng.advance().unwrap(), 0);
        eng.close(1).unwrap();
        assert_eq!(eng.advance().unwrap(), 3);
        // After the drop to 2, only two cells may be occupied.
        assert!(eng.cache.occupied() <= 2);
    }

    #[test]
    fn empty_run_finishes_clean() {
        let mut eng = OnlineSimulator::new(3, SimConfig::new(3, 2), FirstFit).unwrap();
        eng.close_all();
        assert_eq!(eng.advance().unwrap(), 0);
        assert!(eng.finished());
        let (r, log) = eng.finish();
        assert_eq!(r.total_faults(), 0);
        assert_eq!(r.makespan, 0);
        assert!(log.is_empty());
    }
}
