//! Dynamic cache capacity: a piecewise-constant schedule `K(t)`.
//!
//! Peserico's *Paging with dynamic memory capacity* drops the classical
//! assumption that the fast memory has a fixed size: capacity varies over
//! time and the paging algorithm must track it. [`CapacitySchedule`]
//! carries that schedule through every engine in this workspace:
//!
//! * `K(t)` is **piecewise constant**: an initial capacity plus a sorted
//!   list of `(time, k)` steps, where each step takes effect *at* its
//!   time and holds until the next step.
//! * A schedule with no steps is the **`Fixed(K)` fast path**: engines
//!   built through their constant-K constructors use exactly this form,
//!   and every code path they take is unchanged — bit-identity with the
//!   pre-capacity engines is by construction, not by test alone.
//! * **Shrink semantics** (Peserico): when capacity drops at time `t`,
//!   the active strategy must evict down to the new limit before any
//!   request is served at `t`. The engines charge and trace those
//!   evictions exactly like voluntary evictions (they appear in
//!   [`crate::StepReport::voluntary`]).
//!
//! The CLI `SPEC` grammar (`--capacity`) is `K0[,K@T]...`: an initial
//! capacity, then comma-separated `K@T` steps with strictly increasing
//! times `T ≥ 1`. `Display` prints the canonical form of the same
//! grammar, so `parse ∘ to_string` is the identity on canonical
//! schedules. No-op steps (`k` equal to the capacity already in force)
//! are dropped at construction: a retained no-op would force the engines
//! to serve an observable empty timestep that `Fixed(K)` would skip.

use crate::types::Time;
use std::fmt;
use std::str::FromStr;

/// A piecewise-constant capacity schedule `K(t)`. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CapacitySchedule {
    /// Capacity in force before the first step (and forever, if none).
    initial: usize,
    /// Sorted, strictly time-increasing `(time, k)` steps; `k` takes
    /// effect at `time`. Never contains a no-op (`k` equal to the
    /// previous capacity).
    steps: Vec<(Time, usize)>,
}

/// Errors constructing or parsing a [`CapacitySchedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CapacityError {
    /// The SPEC string was empty.
    Empty,
    /// A token failed to parse as `K` or `K@T`.
    BadToken(String),
    /// A capacity value of zero (the model requires `K(t) ≥ 1` always;
    /// engines additionally require `K(t) ≥ p`).
    ZeroCapacity,
    /// A step time of zero (requests issue from `t = 1`; the initial
    /// capacity already covers everything before the first step).
    ZeroTime,
    /// Step times must be strictly increasing; this one was not.
    NonIncreasingTime {
        /// The offending step time.
        time: Time,
    },
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapacityError::Empty => write!(f, "empty capacity spec"),
            CapacityError::BadToken(tok) => {
                write!(f, "bad capacity token {tok:?}: expected K or K@T")
            }
            CapacityError::ZeroCapacity => write!(f, "capacity must be at least 1"),
            CapacityError::ZeroTime => write!(f, "step times start at 1"),
            CapacityError::NonIncreasingTime { time } => {
                write!(f, "step time {time} is not strictly increasing")
            }
        }
    }
}

impl std::error::Error for CapacityError {}

impl CapacitySchedule {
    /// The constant-capacity schedule (the fast path).
    pub fn fixed(k: usize) -> Self {
        CapacitySchedule {
            initial: k,
            steps: Vec::new(),
        }
    }

    /// Build a schedule from an initial capacity and `(time, k)` steps.
    /// Steps must have strictly increasing times `≥ 1` and capacities
    /// `≥ 1`; no-op steps are dropped.
    pub fn new(initial: usize, steps: Vec<(Time, usize)>) -> Result<Self, CapacityError> {
        if initial == 0 {
            return Err(CapacityError::ZeroCapacity);
        }
        let mut kept: Vec<(Time, usize)> = Vec::with_capacity(steps.len());
        let mut last_time: Time = 0;
        let mut current = initial;
        for (time, k) in steps {
            if k == 0 {
                return Err(CapacityError::ZeroCapacity);
            }
            if time == 0 {
                return Err(CapacityError::ZeroTime);
            }
            if time <= last_time {
                return Err(CapacityError::NonIncreasingTime { time });
            }
            last_time = time;
            if k != current {
                kept.push((time, k));
                current = k;
            }
        }
        Ok(CapacitySchedule {
            initial,
            steps: kept,
        })
    }

    /// `true` iff the schedule never changes — the fast path.
    pub fn is_fixed(&self) -> bool {
        self.steps.is_empty()
    }

    /// The capacity in force before the first step.
    pub fn initial_k(&self) -> usize {
        self.initial
    }

    /// The capacity at time `t`: the last step at or before `t`, or the
    /// initial capacity if none.
    pub fn k_at(&self, t: Time) -> usize {
        match self.steps.partition_point(|&(time, _)| time <= t) {
            0 => self.initial,
            i => self.steps[i - 1].1,
        }
    }

    /// The largest capacity the schedule ever reaches — the cell count
    /// engines allocate.
    pub fn max_k(&self) -> usize {
        self.steps
            .iter()
            .map(|&(_, k)| k)
            .fold(self.initial, usize::max)
    }

    /// The smallest capacity the schedule ever reaches — what engines
    /// validate against `p`.
    pub fn min_k(&self) -> usize {
        self.steps
            .iter()
            .map(|&(_, k)| k)
            .fold(self.initial, usize::min)
    }

    /// The capacity-change steps, time-ascending. Engines force a served
    /// timestep at each of these times (unless the run has already
    /// finished), so shrink evictions land exactly when the model says
    /// the capacity dropped — even at times when every core is idle.
    pub fn changes(&self) -> &[(Time, usize)] {
        &self.steps
    }

    /// The first change strictly after `t`, if any.
    pub fn next_change_after(&self, t: Time) -> Option<(Time, usize)> {
        let i = self.steps.partition_point(|&(time, _)| time <= t);
        self.steps.get(i).copied()
    }
}

impl fmt::Display for CapacitySchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.initial)?;
        for &(time, k) in &self.steps {
            write!(f, ",{k}@{time}")?;
        }
        Ok(())
    }
}

impl FromStr for CapacitySchedule {
    type Err = CapacityError;

    /// Parse the CLI `SPEC` grammar `K0[,K@T]...`.
    fn from_str(s: &str) -> Result<Self, CapacityError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(CapacityError::Empty);
        }
        let mut parts = s.split(',');
        let head = parts.next().expect("split yields at least one part");
        let initial: usize = head
            .trim()
            .parse()
            .map_err(|_| CapacityError::BadToken(head.trim().to_string()))?;
        let mut steps = Vec::new();
        for part in parts {
            let tok = part.trim();
            let (k_str, t_str) = tok
                .split_once('@')
                .ok_or_else(|| CapacityError::BadToken(tok.to_string()))?;
            let k: usize = k_str
                .trim()
                .parse()
                .map_err(|_| CapacityError::BadToken(tok.to_string()))?;
            let t: Time = t_str
                .trim()
                .parse()
                .map_err(|_| CapacityError::BadToken(tok.to_string()))?;
            steps.push((t, k));
        }
        CapacitySchedule::new(initial, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_is_constant() {
        let s = CapacitySchedule::fixed(8);
        assert!(s.is_fixed());
        assert_eq!(s.initial_k(), 8);
        assert_eq!(s.k_at(0), 8);
        assert_eq!(s.k_at(1_000_000), 8);
        assert_eq!(s.max_k(), 8);
        assert_eq!(s.min_k(), 8);
        assert_eq!(s.next_change_after(0), None);
        assert_eq!(s.to_string(), "8");
    }

    #[test]
    fn step_semantics_at_boundaries() {
        let s: CapacitySchedule = "8,4@10,6@20".parse().unwrap();
        assert_eq!(s.k_at(1), 8);
        assert_eq!(s.k_at(9), 8);
        assert_eq!(s.k_at(10), 4); // takes effect AT the step time
        assert_eq!(s.k_at(19), 4);
        assert_eq!(s.k_at(20), 6);
        assert_eq!(s.k_at(u64::MAX), 6);
        assert_eq!(s.max_k(), 8);
        assert_eq!(s.min_k(), 4);
        assert_eq!(s.next_change_after(0), Some((10, 4)));
        assert_eq!(s.next_change_after(10), Some((20, 6)));
        assert_eq!(s.next_change_after(20), None);
    }

    #[test]
    fn parse_display_round_trip() {
        for spec in ["8", "8,4@10", "3,9@2,1@7,2@9"] {
            let s: CapacitySchedule = spec.parse().unwrap();
            assert_eq!(s.to_string(), spec);
            let again: CapacitySchedule = s.to_string().parse().unwrap();
            assert_eq!(again, s);
        }
    }

    #[test]
    fn noop_steps_are_dropped() {
        let s: CapacitySchedule = "8,8@5,4@10,4@12,8@20".parse().unwrap();
        assert_eq!(s.changes(), &[(10, 4), (20, 8)]);
        assert_eq!(s.to_string(), "8,4@10,8@20");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(
            "".parse::<CapacitySchedule>().unwrap_err(),
            CapacityError::Empty
        );
        assert!(matches!(
            "x".parse::<CapacitySchedule>().unwrap_err(),
            CapacityError::BadToken(_)
        ));
        assert!(matches!(
            "8,4".parse::<CapacitySchedule>().unwrap_err(),
            CapacityError::BadToken(_)
        ));
        assert!(matches!(
            "8,4@x".parse::<CapacitySchedule>().unwrap_err(),
            CapacityError::BadToken(_)
        ));
        assert_eq!(
            "0".parse::<CapacitySchedule>().unwrap_err(),
            CapacityError::ZeroCapacity
        );
        assert_eq!(
            "8,0@4".parse::<CapacitySchedule>().unwrap_err(),
            CapacityError::ZeroCapacity
        );
        assert_eq!(
            "8,4@0".parse::<CapacitySchedule>().unwrap_err(),
            CapacityError::ZeroTime
        );
        assert_eq!(
            "8,4@10,6@10".parse::<CapacitySchedule>().unwrap_err(),
            CapacityError::NonIncreasingTime { time: 10 }
        );
        assert_eq!(
            "8,4@10,6@3".parse::<CapacitySchedule>().unwrap_err(),
            CapacityError::NonIncreasingTime { time: 3 }
        );
    }

    #[test]
    fn whitespace_is_tolerated() {
        let s: CapacitySchedule = " 8 , 4 @ 10 ".parse().unwrap();
        assert_eq!(s.to_string(), "8,4@10");
    }
}
