//! The scan-based discrete-time engine, kept as a differential tier.
//!
//! [`TickSimulator`] is the engine this crate shipped before the
//! event-driven rebuild of [`crate::sim::Simulator`]: it computes each
//! step's time by scanning every core for its minimum ready time, then
//! scans every core again to pin and to serve. Its per-step cost is
//! `O(p)` regardless of how many cores are actually due, where the event
//! engine pays `O(due · log p)`.
//!
//! It is retained — not as a fallback, but as a verification tier: its
//! semantics are pinned by the same test corpus, and the differential
//! fuzz harness runs every instance through *three* engines (event, tick,
//! and the oracle crate's tick-by-tick naive reference). A divergence in
//! any pair is a bug. The step-level API is identical to
//! [`crate::sim::Simulator`], so traces can be compared
//! [`StepReport`]-for-[`StepReport`].

use crate::cache::{Cache, CacheError, Lookup};
use crate::capacity::CapacitySchedule;
use crate::sim::{apply_capacity_step, Outcome, Served, SimError, SimResult, StepReport};
use crate::strategy::CacheStrategy;
use crate::types::{ModelError, SimConfig, Time, Workload};

/// The scan-based stepping simulator. Same API and bit-identical
/// observable behavior as [`crate::sim::Simulator`]; `O(p)` per step.
pub struct TickSimulator<'w, S: CacheStrategy> {
    workload: &'w Workload,
    cfg: SimConfig,
    /// The capacity schedule `K(t)` (fixed for constant-K runs). The
    /// tick engine also jumps over idle gaps (its [`Self::next_event_time`]
    /// is a min over ready times, not a per-tick walk), so capacity
    /// changes are folded into that minimum exactly as in the event
    /// engine.
    capacity: CapacitySchedule,
    cap_idx: usize,
    strategy: S,
    cache: Cache,
    pos: Vec<usize>,
    ready: Vec<Time>,
    faults: Vec<u64>,
    hits: Vec<u64>,
    fault_times: Vec<Vec<Time>>,
    makespan: Time,
    last_time: Time,
    // Persistent per-step buffers so [`TickSimulator::run`] allocates
    // nothing per timestep.
    voluntary_buf: Vec<(usize, crate::types::PageId)>,
    served_buf: Vec<Served>,
}

impl<'w, S: CacheStrategy> TickSimulator<'w, S> {
    /// Create a simulator; calls the strategy's [`CacheStrategy::begin`].
    pub fn new(workload: &'w Workload, cfg: SimConfig, strategy: S) -> Result<Self, SimError> {
        TickSimulator::with_capacity(
            workload,
            cfg,
            CapacitySchedule::fixed(cfg.cache_size),
            strategy,
        )
    }

    /// Create a simulator whose cache capacity follows `capacity` — the
    /// tick-engine counterpart of
    /// [`crate::sim::Simulator::with_capacity`], with identical
    /// validation and observable behavior.
    pub fn with_capacity(
        workload: &'w Workload,
        cfg: SimConfig,
        capacity: CapacitySchedule,
        mut strategy: S,
    ) -> Result<Self, SimError> {
        cfg.validate(workload)?;
        if capacity.initial_k() != cfg.cache_size {
            return Err(ModelError::CapacityMismatch {
                config_k: cfg.cache_size,
                initial_k: capacity.initial_k(),
            }
            .into());
        }
        if capacity.min_k() < workload.num_cores() {
            return Err(ModelError::CapacityBelowCores {
                min_k: capacity.min_k(),
                cores: workload.num_cores(),
            }
            .into());
        }
        strategy.begin(workload, &cfg);
        let p = workload.num_cores();
        let mut cache = Cache::new(capacity.max_k(), p);
        cache.set_limit(cfg.cache_size);
        Ok(TickSimulator {
            workload,
            cfg,
            capacity,
            cap_idx: 0,
            strategy,
            cache,
            pos: vec![0; p],
            ready: vec![1; p],
            faults: vec![0; p],
            hits: vec![0; p],
            fault_times: vec![Vec::new(); p],
            makespan: 0,
            last_time: 0,
            voluntary_buf: Vec::new(),
            served_buf: Vec::with_capacity(p),
        })
    }

    /// The shared cache, for inspection between steps.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Next request index of each core.
    pub fn positions(&self) -> &[usize] {
        &self.pos
    }

    /// Time at which each core's next request issues.
    pub fn ready_times(&self) -> &[Time] {
        &self.ready
    }

    /// `true` once every sequence has been fully served.
    pub fn finished(&self) -> bool {
        self.pos
            .iter()
            .zip(self.workload.sequences())
            .all(|(&pos, seq)| pos >= seq.len())
    }

    /// The next timestep to serve, per the boundary contract documented on
    /// [`CacheStrategy::next_voluntary_time`]: the minimum ready time over
    /// unfinished cores (found by an `O(p)` scan), unless the strategy
    /// declares an earlier non-stale voluntary time.
    fn next_event_time(&self) -> Option<Time> {
        let next_request = self
            .pos
            .iter()
            .zip(self.ready.iter())
            .zip(self.workload.sequences())
            .filter(|((&pos, _), seq)| pos < seq.len())
            .map(|((_, &ready), _)| ready)
            .min()?;
        let mut t = next_request;
        if let Some(vt) = self.strategy.next_voluntary_time() {
            if vt > self.last_time && vt < t {
                t = vt;
            }
        }
        // Capacity changes force a served step at their change time; the
        // `min()?` above already dropped post-final changes.
        if let Some((ct, _)) = self.capacity.next_change_after(self.last_time) {
            if ct < t {
                t = ct;
            }
        }
        Some(t)
    }

    /// Serve one timestep (the next time at which any request is due).
    /// Returns `Ok(None)` when every sequence is finished.
    pub fn step(&mut self) -> Result<Option<StepReport>, SimError> {
        match self.step_inner()? {
            None => Ok(None),
            Some(t) => Ok(Some(StepReport {
                time: t,
                voluntary: std::mem::take(&mut self.voluntary_buf),
                served: std::mem::take(&mut self.served_buf),
            })),
        }
    }

    /// Serve one timestep into the persistent buffers, returning the time
    /// served (`None` once every sequence is finished).
    fn step_inner(&mut self) -> Result<Option<Time>, SimError> {
        let Some(t) = self.next_event_time() else {
            return Ok(None);
        };
        self.last_time = t;
        self.cache.promote_due(t);
        self.voluntary_buf.clear();
        self.served_buf.clear();

        // Pin every page requested this parallel step *before* the strategy
        // gets to evict voluntarily: parallel reads require `R(x) ⊆ C'`
        // (Algorithms 1 and 2), so evicting a page that is requested at `t`
        // must fail even when the eviction is voluntary.
        for core in 0..self.workload.num_cores() {
            if self.pos[core] < self.workload.len(core) && self.ready[core] == t {
                self.cache
                    .pin_page(self.workload.sequence(core)[self.pos[core]]);
            }
        }

        // Capacity changes due at `t`: same transition, same placement
        // (after pins, before strategy voluntary evictions) as the event
        // engine — the logic is shared, not transcribed.
        apply_capacity_step(
            t,
            &self.capacity,
            &mut self.cap_idx,
            &mut self.cache,
            &mut self.strategy,
            &mut self.voluntary_buf,
        )?;

        for cell in self.strategy.voluntary_evictions(t, &self.cache) {
            if !matches!(self.cache.cell(cell), crate::cache::CellState::Present(_)) {
                return Err(SimError::BadVoluntaryEviction { cell });
            }
            let page = self.cache.evict(cell)?;
            self.strategy.on_evict(page, cell);
            self.voluntary_buf.push((cell, page));
        }

        for core in 0..self.workload.num_cores() {
            let seq = self.workload.sequence(core);
            if self.pos[core] >= seq.len() || self.ready[core] != t {
                continue;
            }
            let index = self.pos[core];
            let page = seq[index];
            let outcome = match self.cache.lookup(page) {
                Lookup::Present { .. } => {
                    self.hits[core] += 1;
                    self.strategy.on_hit(core, page, t, &self.cache);
                    self.ready[core] = t + 1;
                    self.makespan = self.makespan.max(t);
                    Outcome::Hit
                }
                Lookup::Fetching { .. } => {
                    // In flight for another core (same core cannot be
                    // mid-fetch while issuing). Fault, no new cell.
                    self.faults[core] += 1;
                    self.fault_times[core].push(t);
                    self.strategy
                        .on_shared_fetch_miss(core, page, t, &self.cache);
                    self.ready[core] = t + self.cfg.tau + 1;
                    self.makespan = self.makespan.max(t + self.cfg.tau);
                    Outcome::SharedFetchMiss
                }
                Lookup::Absent => {
                    self.faults[core] += 1;
                    self.fault_times[core].push(t);
                    let cell = self.strategy.choose_cell(core, page, t, &self.cache);
                    let evicted = match self.cache.cell(cell) {
                        crate::cache::CellState::Present(_) => {
                            let victim = self.cache.evict(cell)?;
                            self.strategy.on_evict(victim, cell);
                            Some(victim)
                        }
                        crate::cache::CellState::Empty => None,
                        crate::cache::CellState::Fetching { .. } => {
                            return Err(SimError::Cache(CacheError::EvictFetching { cell }));
                        }
                    };
                    self.cache
                        .start_fetch(cell, page, core, t + self.cfg.tau + 1)?;
                    self.strategy.on_fault(core, page, t, cell, &self.cache);
                    self.ready[core] = t + self.cfg.tau + 1;
                    self.makespan = self.makespan.max(t + self.cfg.tau);
                    Outcome::Fault { cell, evicted }
                }
            };
            self.pos[core] += 1;
            self.served_buf.push(Served {
                core,
                index,
                page,
                outcome,
            });
        }
        self.cache.clear_pins();
        Ok(Some(t))
    }

    /// Run to completion and return the aggregate result.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        while self.step_inner()?.is_some() {}
        Ok(self.into_result())
    }

    /// Run to completion, additionally collecting every [`StepReport`]
    /// (one per non-empty timestep) — the full event trace.
    pub fn run_with_trace(mut self) -> Result<(SimResult, Vec<StepReport>), SimError> {
        let mut trace = Vec::new();
        while let Some(report) = self.step()? {
            trace.push(report);
        }
        Ok((self.into_result(), trace))
    }

    fn into_result(self) -> SimResult {
        SimResult {
            faults: self.faults,
            hits: self.hits,
            makespan: self.makespan,
            fault_times: self.fault_times,
            config: self.cfg,
        }
    }
}

/// Run `strategy` on `workload` under `cfg` with the scan-based tick
/// engine. Must agree bit-for-bit with [`crate::sim::simulate`]; exists so
/// tests, the fuzz harness, and the benchmarks can compare the two.
pub fn simulate_tick<S: CacheStrategy>(
    workload: &Workload,
    cfg: SimConfig,
    strategy: S,
) -> Result<SimResult, SimError> {
    TickSimulator::new(workload, cfg, strategy)?.run()
}

/// [`simulate_tick`] with cache capacity following `capacity`. Must agree
/// bit-for-bit with [`crate::sim::simulate_with_capacity`].
pub fn simulate_tick_with_capacity<S: CacheStrategy>(
    workload: &Workload,
    cfg: SimConfig,
    capacity: CapacitySchedule,
    strategy: S,
) -> Result<SimResult, SimError> {
    TickSimulator::with_capacity(workload, cfg, capacity, strategy)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use crate::types::PageId;

    struct FirstFit;
    impl CacheStrategy for FirstFit {
        fn name(&self) -> String {
            "FirstFit".into()
        }
        fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
            cache
                .empty_cell()
                .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
                .expect("a victim always exists when K >= p")
        }
    }

    fn w(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn tick_engine_timing_examples() {
        // The sim.rs doc examples, pinned directly on the tick engine.
        let r = simulate_tick(&w(&[&[1, 2]]), SimConfig::new(2, 3), FirstFit).unwrap();
        assert_eq!(r.fault_times[0], vec![1, 5]);
        assert_eq!(r.makespan, 8);
        let r = simulate_tick(&w(&[&[1, 1]]), SimConfig::new(1, 3), FirstFit).unwrap();
        assert_eq!((r.faults[0], r.hits[0], r.makespan), (1, 1, 5));
    }

    #[test]
    fn engines_agree_result_and_trace() {
        for (wl, k, tau) in [
            (w(&[&[1, 2, 1, 2], &[7, 7, 8, 8]]), 3, 2),
            (w(&[&[1], &[1]]), 2, 4),
            (w(&[&[1, 2, 3, 1, 2, 3], &[7, 8, 7, 8]]), 4, 0),
            (w(&[&[], &[]]), 2, 3),
        ] {
            let cfg = SimConfig::new(k, tau);
            let event = simulate(&wl, cfg, FirstFit).unwrap();
            let tick = simulate_tick(&wl, cfg, FirstFit).unwrap();
            assert_eq!(event, tick);
            let (er, et) = crate::sim::Simulator::new(&wl, cfg, FirstFit)
                .unwrap()
                .run_with_trace()
                .unwrap();
            let (tr, tt) = TickSimulator::new(&wl, cfg, FirstFit)
                .unwrap()
                .run_with_trace()
                .unwrap();
            assert_eq!(er, tr);
            assert_eq!(et, tt, "step traces diverged on {wl:?} K={k} tau={tau}");
        }
    }

    #[test]
    fn engines_agree_under_capacity_schedules() {
        let specs = ["4,2@3", "4,2@3,4@8", "4,3@2,2@5,4@9", "4,2@100"];
        for (wl, tau) in [
            (w(&[&[1, 2, 1, 2], &[7, 7, 8, 8]]), 2),
            (w(&[&[1, 2, 3, 1, 2, 3], &[7, 8, 7, 8]]), 0),
            (w(&[&[1, 2, 3, 4, 1, 2], &[1, 3, 5, 7, 5, 3]]), 3),
        ] {
            for spec in specs {
                let cap: CapacitySchedule = spec.parse().unwrap();
                let cfg = SimConfig::new(cap.initial_k(), tau);
                let (er, et) =
                    crate::sim::Simulator::with_capacity(&wl, cfg, cap.clone(), FirstFit)
                        .unwrap()
                        .run_with_trace()
                        .unwrap();
                let (tr, tt) = TickSimulator::with_capacity(&wl, cfg, cap, FirstFit)
                    .unwrap()
                    .run_with_trace()
                    .unwrap();
                assert_eq!(er, tr, "results diverged on {wl:?} cap={spec} tau={tau}");
                assert_eq!(et, tt, "traces diverged on {wl:?} cap={spec} tau={tau}");
            }
        }
    }
}
