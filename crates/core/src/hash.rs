//! A fast, deterministic hasher for page-keyed maps on the hot path.
//!
//! The engine probes `HashMap<PageId, _>` several times per served
//! request (lookup, pin, evict, fetch bookkeeping), and recency policies
//! probe their own page maps on every access. The standard library's
//! default SipHash is DoS-resistant but costs tens of nanoseconds per
//! probe — a large share of the per-request budget for maps whose keys
//! are 4-byte page ids supplied by our own workloads, not by an
//! adversary. [`FxHasher`] is the compiler's well-known multiply-xor
//! scheme (rustc's `FxHashMap`): one wrapping multiply per word, ~1ns a
//! probe, and — unlike the std default — *deterministic across runs*,
//! which suits an engine whose whole contract is bit-identical replay.
//!
//! Only use these maps where iteration order is never observed (the
//! engine's maps are probed point-wise only); a hasher change permutes
//! bucket order, so any code iterating a map would change behavior.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (the rustc `FxHash` function). Not
/// collision-resistant against adversarial keys; do not use for
/// externally controlled input.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// 64-bit Fx multiplier: `2^64 / φ`, rounded to odd.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // `HashMap` derives the bucket index from the LOW hash bits, but
        // a single wrapping multiply leaves the low k bits of the output
        // dependent only on the low k bits of the input — keys striding
        // by a power of two (e.g. the disjoint-workload `core · 2^20 +
        // local` page layout) would then collide into a handful of
        // buckets. Folding the high half down makes every output bit
        // depend on the full product.
        self.hash ^ (self.hash >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — point-lookup maps on the hot path.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PageId;

    #[test]
    fn deterministic_and_usable_as_page_map() {
        let mut m: FxHashMap<PageId, usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(PageId(i), i as usize * 3);
        }
        assert_eq!(m.get(&PageId(500)), Some(&1500));
        assert_eq!(m.len(), 1000);
        // Same key hashes identically across hasher instances (no random
        // per-map seed, unlike the std default).
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h = |k: &PageId| b.hash_one(k);
        assert_eq!(h(&PageId(7)), h(&PageId(7)));
        assert_ne!(h(&PageId(7)), h(&PageId(8)));
    }
}
