//! Trace analytics: derived views over the event stream produced by
//! [`Simulator::run_with_trace`](crate::Simulator::run_with_trace) —
//! per-core cache occupancy over time (the *effective partition* any
//! strategy induces), eviction pressure per page, and outcome tallies.

use crate::sim::{Outcome, StepReport};
use crate::types::{PageId, Time};
use std::collections::HashMap;

/// Outcome tallies over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that started a fetch.
    pub faults: u64,
    /// Requests that joined another core's in-flight fetch.
    pub shared_fetch_misses: u64,
}

/// Count hits, faults, and shared-fetch misses in a trace.
pub fn outcome_counts(trace: &[StepReport]) -> OutcomeCounts {
    let mut counts = OutcomeCounts::default();
    for step in trace {
        for served in &step.served {
            match served.outcome {
                Outcome::Hit => counts.hits += 1,
                Outcome::Fault { .. } => counts.faults += 1,
                Outcome::SharedFetchMiss => counts.shared_fetch_misses += 1,
            }
        }
    }
    counts
}

/// How many times each page was evicted (forced or voluntary) over a trace.
pub fn evictions_by_page(trace: &[StepReport]) -> HashMap<PageId, u64> {
    let mut out: HashMap<PageId, u64> = HashMap::new();
    for step in trace {
        for &(_, page) in &step.voluntary {
            *out.entry(page).or_insert(0) += 1;
        }
        for served in &step.served {
            if let Outcome::Fault {
                evicted: Some(victim),
                ..
            } = served.outcome
            {
                *out.entry(victim).or_insert(0) += 1;
            }
        }
    }
    out
}

/// The *effective partition* a strategy induced: cells owned per core
/// after each traced timestep, reconstructed purely from the event stream
/// (faults claim cells; evictions release them).
///
/// Returns `(time, owned_cells_per_core)` snapshots, one per step.
pub fn occupancy_timeline(
    trace: &[StepReport],
    num_cores: usize,
    cache_size: usize,
) -> Vec<(Time, Vec<usize>)> {
    let mut cell_owner: Vec<Option<usize>> = vec![None; cache_size];
    let mut cell_page: Vec<Option<PageId>> = vec![None; cache_size];
    let mut page_cell: HashMap<PageId, usize> = HashMap::new();
    let mut timeline = Vec::with_capacity(trace.len());
    for step in trace {
        for &(cell, page) in &step.voluntary {
            cell_owner[cell] = None;
            cell_page[cell] = None;
            page_cell.remove(&page);
        }
        for served in &step.served {
            if let Outcome::Fault { cell, evicted } = served.outcome {
                if let Some(victim) = evicted {
                    page_cell.remove(&victim);
                }
                if let Some(old) = cell_page[cell] {
                    page_cell.remove(&old);
                }
                cell_owner[cell] = Some(served.core);
                cell_page[cell] = Some(served.page);
                page_cell.insert(served.page, cell);
            }
        }
        let mut owned = vec![0usize; num_cores];
        for owner in cell_owner.iter().flatten() {
            owned[*owner] += 1;
        }
        timeline.push((step.time, owned));
    }
    timeline
}

/// Gaps between consecutive fault issue times of one core (empty if the
/// core faulted fewer than twice).
pub fn inter_fault_times(fault_times: &[Time]) -> Vec<Time> {
    fault_times.windows(2).map(|w| w[1] - w[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::sim::Simulator;
    use crate::strategy::CacheStrategy;
    use crate::types::{SimConfig, Workload};

    struct FirstFit;
    impl CacheStrategy for FirstFit {
        fn name(&self) -> String {
            "FirstFit".into()
        }
        fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
            cache
                .empty_cell()
                .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
                .expect("victim exists")
        }
    }

    fn traced(seqs: &[&[u32]], k: usize, tau: u64) -> (crate::sim::SimResult, Vec<StepReport>) {
        let w = Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap();
        Simulator::new(&w, SimConfig::new(k, tau), FirstFit)
            .unwrap()
            .run_with_trace()
            .unwrap()
    }

    #[test]
    fn outcome_counts_match_result() {
        let (result, trace) = traced(&[&[1, 2, 1, 2], &[7, 7, 8, 8]], 3, 1);
        let counts = outcome_counts(&trace);
        assert_eq!(counts.hits, result.total_hits());
        assert_eq!(
            counts.faults + counts.shared_fetch_misses,
            result.total_faults()
        );
    }

    #[test]
    fn eviction_pressure_identifies_the_thrashed_page() {
        // K=1, single core cycling two pages: each page keeps evicting the
        // other.
        let (_, trace) = traced(&[&[1, 2, 1, 2, 1, 2]], 1, 0);
        let ev = evictions_by_page(&trace);
        assert_eq!(ev.get(&PageId(1)).copied().unwrap_or(0), 3);
        assert_eq!(ev.get(&PageId(2)).copied().unwrap_or(0), 2);
    }

    #[test]
    fn occupancy_matches_live_cache_state() {
        // Reconstruct occupancy from events and compare with the cache's
        // own ownership accounting at every step.
        let w = Workload::from_u32([vec![1, 2, 3, 1, 2, 3], vec![7, 8, 7, 8, 7, 8]]).unwrap();
        let cfg = SimConfig::new(4, 2);
        let mut sim = Simulator::new(&w, cfg, FirstFit).unwrap();
        let mut trace = Vec::new();
        let mut live: Vec<Vec<usize>> = Vec::new();
        while let Some(step) = sim.step().unwrap() {
            trace.push(step);
            live.push((0..2).map(|c| sim.cache().owned_count(c)).collect());
        }
        let reconstructed = occupancy_timeline(&trace, 2, 4);
        assert_eq!(reconstructed.len(), live.len());
        for ((_, owned), expected) in reconstructed.iter().zip(&live) {
            assert_eq!(owned, expected);
        }
    }

    #[test]
    fn inter_fault_gaps() {
        assert_eq!(inter_fault_times(&[1, 4, 7, 13]), vec![3, 3, 6]);
        assert!(inter_fault_times(&[5]).is_empty());
        assert!(inter_fault_times(&[]).is_empty());
    }
}
