//! The shared cache: `K` cells, each empty, holding a resident page, or
//! reserved for an in-flight fetch.
//!
//! Following the paper's convention, when a page must be evicted to make
//! space, the eviction happens immediately and the cell is *unused* (state
//! [`CellState::Fetching`]) until the fetch of the new page completes; a
//! fetching cell can never be chosen as a victim (matching the constraint
//! in Algorithms 1 and 2 that configurations always contain in-flight
//! pages).

use crate::types::{PageId, Time};
use std::collections::HashMap;

/// State of a single cache cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum CellState {
    /// The cell holds no page.
    Empty,
    /// The cell holds a resident page, readable by every core.
    Present(PageId),
    /// The cell is reserved for `page`, which becomes resident (readable)
    /// at time `ready_at`.
    Fetching { page: PageId, ready_at: Time },
}

impl CellState {
    /// The page associated with the cell, resident or in flight.
    pub fn page(&self) -> Option<PageId> {
        match self {
            CellState::Empty => None,
            CellState::Present(p) => Some(*p),
            CellState::Fetching { page, .. } => Some(*page),
        }
    }

    /// `true` iff the cell holds a resident page.
    pub fn is_present(&self) -> bool {
        matches!(self, CellState::Present(_))
    }
}

/// Outcome of looking a page up in the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Lookup {
    /// The page is resident in the given cell.
    Present { cell: usize },
    /// The page is currently being fetched into the given cell and will be
    /// resident at `ready_at`.
    Fetching { cell: usize, ready_at: Time },
    /// The page is not in the cache at all.
    Absent,
}

/// Errors raised by illegal cache manipulations (these indicate a buggy
/// strategy, e.g. evicting a fetching cell, so the simulator surfaces them
/// as [`crate::sim::SimError`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum CacheError {
    /// The referenced cell index is out of range.
    BadCell { cell: usize },
    /// Attempted to evict an empty cell.
    EvictEmpty { cell: usize },
    /// Attempted to evict a cell that is mid-fetch.
    EvictFetching { cell: usize },
    /// Attempted to evict a page that is being read in the current
    /// parallel step (the model forbids this: Algorithms 1 and 2 require
    /// every currently requested page to remain in the configuration).
    EvictPinned { cell: usize },
    /// Attempted to start a fetch into a non-empty cell.
    FetchIntoOccupied { cell: usize },
    /// Attempted to fetch a page that is already cached or in flight.
    DuplicatePage { page: PageId },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::BadCell { cell } => write!(f, "cell index {cell} out of range"),
            CacheError::EvictEmpty { cell } => write!(f, "cannot evict empty cell {cell}"),
            CacheError::EvictFetching { cell } => {
                write!(f, "cannot evict cell {cell}: a fetch is in flight")
            }
            CacheError::EvictPinned { cell } => {
                write!(
                    f,
                    "cannot evict cell {cell}: its page is requested this parallel step"
                )
            }
            CacheError::FetchIntoOccupied { cell } => {
                write!(f, "cannot fetch into occupied cell {cell}")
            }
            CacheError::DuplicatePage { page } => {
                write!(f, "page {page} is already cached or in flight")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// A `K`-cell shared cache with per-cell ownership bookkeeping.
///
/// *Ownership* records which core's request brought a page in. The engine
/// maintains it for every strategy; shared strategies may ignore it, while
/// partition strategies use it to account part occupancy.
#[derive(Clone, Debug)]
pub struct Cache {
    cells: Vec<CellState>,
    owner: Vec<Option<usize>>,
    index: HashMap<PageId, usize>,
    owned_counts: Vec<usize>,
    in_flight: Vec<usize>,
    pinned: Vec<bool>,
}

impl Cache {
    /// Create an empty cache with `cache_size` cells serving `num_cores` cores.
    pub fn new(cache_size: usize, num_cores: usize) -> Self {
        Cache {
            cells: vec![CellState::Empty; cache_size],
            owner: vec![None; cache_size],
            index: HashMap::with_capacity(cache_size),
            owned_counts: vec![0; num_cores],
            in_flight: Vec::with_capacity(num_cores),
            pinned: vec![false; cache_size],
        }
    }

    /// Pin every cell currently holding one of `pages` for the ongoing
    /// parallel step: pinned cells cannot be evicted until
    /// [`Cache::clear_pins`]. The engine pins all simultaneously requested
    /// pages, mirroring the `R(x) ⊆ C'` constraint of Algorithms 1 and 2.
    pub fn pin_pages<I: IntoIterator<Item = PageId>>(&mut self, pages: I) {
        for page in pages {
            if let Some(&cell) = self.index.get(&page) {
                self.pinned[cell] = true;
            }
        }
    }

    /// Remove every pin (end of the parallel step).
    pub fn clear_pins(&mut self) {
        self.pinned.fill(false);
    }

    /// Whether `cell` is pinned for the ongoing parallel step.
    pub fn is_pinned(&self, cell: usize) -> bool {
        self.pinned[cell]
    }

    /// Iterate `(cell, page, owner)` over resident pages that may legally
    /// be evicted right now (resident and not pinned).
    pub fn evictable_cells(&self) -> impl Iterator<Item = (usize, PageId, Option<usize>)> + '_ {
        self.present_cells()
            .filter(|(cell, _, _)| !self.pinned[*cell])
    }

    /// Iterate `(cell, page)` over evictable resident pages owned by `core`.
    pub fn evictable_cells_of(&self, core: usize) -> impl Iterator<Item = (usize, PageId)> + '_ {
        self.evictable_cells()
            .filter(move |(_, _, o)| *o == Some(core))
            .map(|(c, p, _)| (c, p))
    }

    /// Number of cells `K`.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` iff the cache has no cells (never the case for a validated config).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// State of cell `cell`.
    pub fn cell(&self, cell: usize) -> CellState {
        self.cells[cell]
    }

    /// Core that brought the page in cell `cell`, if occupied.
    pub fn owner(&self, cell: usize) -> Option<usize> {
        self.owner[cell]
    }

    /// Number of cells (resident or fetching) owned by `core`.
    pub fn owned_count(&self, core: usize) -> usize {
        self.owned_counts[core]
    }

    /// Total number of occupied cells (resident or fetching).
    pub fn occupied(&self) -> usize {
        self.index.len()
    }

    /// Look up a page. Call [`Cache::promote_due`] first so that completed
    /// fetches read as `Present`.
    pub fn lookup(&self, page: PageId) -> Lookup {
        match self.index.get(&page) {
            None => Lookup::Absent,
            Some(&cell) => match self.cells[cell] {
                CellState::Present(_) => Lookup::Present { cell },
                CellState::Fetching { ready_at, .. } => Lookup::Fetching { cell, ready_at },
                CellState::Empty => unreachable!("index points at empty cell"),
            },
        }
    }

    /// `true` iff `page` is resident (not merely in flight).
    pub fn contains_resident(&self, page: PageId) -> bool {
        matches!(self.lookup(page), Lookup::Present { .. })
    }

    /// Cell index holding `page` (resident or in flight).
    pub fn cell_of(&self, page: PageId) -> Option<usize> {
        self.index.get(&page).copied()
    }

    /// Convert every fetch whose `ready_at ≤ now` into a resident page.
    pub fn promote_due(&mut self, now: Time) {
        let cells = &mut self.cells;
        self.in_flight.retain(|&cell| match cells[cell] {
            CellState::Fetching { page, ready_at } if ready_at <= now => {
                cells[cell] = CellState::Present(page);
                false
            }
            CellState::Fetching { .. } => true,
            _ => false,
        });
    }

    /// First empty cell, if any.
    pub fn empty_cell(&self) -> Option<usize> {
        self.cells
            .iter()
            .position(|c| matches!(c, CellState::Empty))
    }

    /// Iterate `(cell, page, owner)` over resident pages, in cell order.
    pub fn present_cells(&self) -> impl Iterator<Item = (usize, PageId, Option<usize>)> + '_ {
        self.cells.iter().enumerate().filter_map(|(i, c)| match c {
            CellState::Present(p) => Some((i, *p, self.owner[i])),
            _ => None,
        })
    }

    /// Iterate `(cell, page, owner)` over resident pages owned by `core`.
    pub fn present_cells_of(&self, core: usize) -> impl Iterator<Item = (usize, PageId)> + '_ {
        self.present_cells()
            .filter(move |(_, _, o)| *o == Some(core))
            .map(|(c, p, _)| (c, p))
    }

    /// All resident pages, in cell order.
    pub fn present_pages(&self) -> Vec<PageId> {
        self.present_cells().map(|(_, p, _)| p).collect()
    }

    /// Evict the resident page in `cell`, leaving it empty. Fails on
    /// empty, fetching, or pinned cells.
    pub fn evict(&mut self, cell: usize) -> Result<PageId, CacheError> {
        if self.pinned.get(cell).copied().unwrap_or(false) {
            return Err(CacheError::EvictPinned { cell });
        }
        match self.cells.get(cell) {
            None => Err(CacheError::BadCell { cell }),
            Some(CellState::Empty) => Err(CacheError::EvictEmpty { cell }),
            Some(CellState::Fetching { .. }) => Err(CacheError::EvictFetching { cell }),
            Some(CellState::Present(page)) => {
                let page = *page;
                self.index.remove(&page);
                if let Some(core) = self.owner[cell].take() {
                    self.owned_counts[core] -= 1;
                }
                self.cells[cell] = CellState::Empty;
                Ok(page)
            }
        }
    }

    /// Begin fetching `page` for `core` into the empty cell `cell`; the page
    /// becomes resident at `ready_at`.
    pub fn start_fetch(
        &mut self,
        cell: usize,
        page: PageId,
        core: usize,
        ready_at: Time,
    ) -> Result<(), CacheError> {
        match self.cells.get(cell) {
            None => return Err(CacheError::BadCell { cell }),
            Some(CellState::Empty) => {}
            Some(_) => return Err(CacheError::FetchIntoOccupied { cell }),
        }
        if self.index.contains_key(&page) {
            return Err(CacheError::DuplicatePage { page });
        }
        self.cells[cell] = CellState::Fetching { page, ready_at };
        self.owner[cell] = Some(core);
        self.owned_counts[core] += 1;
        self.index.insert(page, cell);
        self.in_flight.push(cell);
        Ok(())
    }

    /// Number of fetches currently in flight.
    pub fn fetches_in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn fetch_then_promote_then_lookup() {
        let mut c = Cache::new(3, 2);
        assert_eq!(c.lookup(p(1)), Lookup::Absent);
        c.start_fetch(0, p(1), 0, 5).unwrap();
        assert_eq!(
            c.lookup(p(1)),
            Lookup::Fetching {
                cell: 0,
                ready_at: 5
            }
        );
        assert_eq!(c.fetches_in_flight(), 1);
        c.promote_due(4);
        assert_eq!(
            c.lookup(p(1)),
            Lookup::Fetching {
                cell: 0,
                ready_at: 5
            }
        );
        c.promote_due(5);
        assert_eq!(c.lookup(p(1)), Lookup::Present { cell: 0 });
        assert_eq!(c.fetches_in_flight(), 0);
        assert!(c.contains_resident(p(1)));
    }

    #[test]
    fn ownership_accounting() {
        let mut c = Cache::new(3, 2);
        c.start_fetch(0, p(1), 0, 1).unwrap();
        c.start_fetch(1, p(2), 1, 1).unwrap();
        c.start_fetch(2, p(3), 1, 1).unwrap();
        c.promote_due(1);
        assert_eq!(c.owned_count(0), 1);
        assert_eq!(c.owned_count(1), 2);
        assert_eq!(c.occupied(), 3);
        assert_eq!(c.evict(1).unwrap(), p(2));
        assert_eq!(c.owned_count(1), 1);
        assert_eq!(c.occupied(), 2);
        assert_eq!(c.empty_cell(), Some(1));
        let owned: Vec<PageId> = c.present_cells_of(1).map(|(_, pg)| pg).collect();
        assert_eq!(owned, vec![p(3)]);
    }

    #[test]
    fn cannot_evict_fetching_or_empty() {
        let mut c = Cache::new(2, 1);
        c.start_fetch(0, p(1), 0, 10).unwrap();
        assert_eq!(
            c.evict(0).unwrap_err(),
            CacheError::EvictFetching { cell: 0 }
        );
        assert_eq!(c.evict(1).unwrap_err(), CacheError::EvictEmpty { cell: 1 });
        assert_eq!(c.evict(9).unwrap_err(), CacheError::BadCell { cell: 9 });
    }

    #[test]
    fn cannot_double_fetch_or_fetch_into_occupied() {
        let mut c = Cache::new(2, 1);
        c.start_fetch(0, p(1), 0, 1).unwrap();
        assert_eq!(
            c.start_fetch(0, p(2), 0, 1).unwrap_err(),
            CacheError::FetchIntoOccupied { cell: 0 }
        );
        assert_eq!(
            c.start_fetch(1, p(1), 0, 1).unwrap_err(),
            CacheError::DuplicatePage { page: p(1) }
        );
    }

    #[test]
    fn present_pages_in_cell_order() {
        let mut c = Cache::new(3, 1);
        c.start_fetch(2, p(9), 0, 1).unwrap();
        c.start_fetch(0, p(4), 0, 1).unwrap();
        c.promote_due(1);
        assert_eq!(c.present_pages(), vec![p(4), p(9)]);
    }

    #[test]
    fn pinned_pages_cannot_be_evicted() {
        let mut c = Cache::new(3, 2);
        c.start_fetch(0, p(1), 0, 1).unwrap();
        c.start_fetch(1, p(2), 1, 1).unwrap();
        c.promote_due(1);
        c.pin_pages([p(1), p(99)]); // absent pages are ignored
        assert!(c.is_pinned(0));
        assert!(!c.is_pinned(1));
        assert_eq!(c.evict(0).unwrap_err(), CacheError::EvictPinned { cell: 0 });
        assert_eq!(c.evict(1).unwrap(), p(2));
        let evictable: Vec<PageId> = c.evictable_cells().map(|(_, pg, _)| pg).collect();
        assert!(evictable.is_empty());
        c.clear_pins();
        assert_eq!(c.evict(0).unwrap(), p(1));
    }

    #[test]
    fn evictable_cells_filter_pins_and_fetches() {
        let mut c = Cache::new(3, 2);
        c.start_fetch(0, p(1), 0, 1).unwrap();
        c.start_fetch(1, p(2), 0, 1).unwrap();
        c.start_fetch(2, p(3), 1, 10).unwrap(); // stays in flight
        c.promote_due(1);
        c.pin_pages([p(2)]);
        let evictable: Vec<PageId> = c.evictable_cells().map(|(_, pg, _)| pg).collect();
        assert_eq!(evictable, vec![p(1)]);
        let of0: Vec<PageId> = c.evictable_cells_of(0).map(|(_, pg)| pg).collect();
        assert_eq!(of0, vec![p(1)]);
    }

    #[test]
    fn cell_state_helpers() {
        assert_eq!(CellState::Empty.page(), None);
        assert_eq!(CellState::Present(p(3)).page(), Some(p(3)));
        assert_eq!(
            CellState::Fetching {
                page: p(4),
                ready_at: 2
            }
            .page(),
            Some(p(4))
        );
        assert!(CellState::Present(p(1)).is_present());
        assert!(!CellState::Empty.is_present());
    }
}
