//! The shared cache: `K` cells, each empty, holding a resident page, or
//! reserved for an in-flight fetch.
//!
//! Following the paper's convention, when a page must be evicted to make
//! space, the eviction happens immediately and the cell is *unused* (state
//! [`CellState::Fetching`]) until the fetch of the new page completes; a
//! fetching cell can never be chosen as a victim (matching the constraint
//! in Algorithms 1 and 2 that configurations always contain in-flight
//! pages).

use crate::hash::FxHashMap;
use crate::types::{PageId, Time};

/// State of a single cache cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum CellState {
    /// The cell holds no page.
    Empty,
    /// The cell holds a resident page, readable by every core.
    Present(PageId),
    /// The cell is reserved for `page`, which becomes resident (readable)
    /// at time `ready_at`.
    Fetching { page: PageId, ready_at: Time },
}

impl CellState {
    /// The page associated with the cell, resident or in flight.
    pub fn page(&self) -> Option<PageId> {
        match self {
            CellState::Empty => None,
            CellState::Present(p) => Some(*p),
            CellState::Fetching { page, .. } => Some(*page),
        }
    }

    /// `true` iff the cell holds a resident page.
    pub fn is_present(&self) -> bool {
        matches!(self, CellState::Present(_))
    }
}

/// Outcome of looking a page up in the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Lookup {
    /// The page is resident in the given cell.
    Present { cell: usize },
    /// The page is currently being fetched into the given cell and will be
    /// resident at `ready_at`.
    Fetching { cell: usize, ready_at: Time },
    /// The page is not in the cache at all.
    Absent,
}

/// Errors raised by illegal cache manipulations (these indicate a buggy
/// strategy, e.g. evicting a fetching cell, so the simulator surfaces them
/// as [`crate::sim::SimError`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum CacheError {
    /// The referenced cell index is out of range.
    BadCell { cell: usize },
    /// Attempted to evict an empty cell.
    EvictEmpty { cell: usize },
    /// Attempted to evict a cell that is mid-fetch.
    EvictFetching { cell: usize },
    /// Attempted to evict a page that is being read in the current
    /// parallel step (the model forbids this: Algorithms 1 and 2 require
    /// every currently requested page to remain in the configuration).
    EvictPinned { cell: usize },
    /// Attempted to start a fetch into a non-empty cell.
    FetchIntoOccupied { cell: usize },
    /// Attempted to fetch a page that is already cached or in flight.
    DuplicatePage { page: PageId },
    /// Attempted to start a fetch while the cache is already at (or,
    /// transiently, above) its current capacity limit `K(t)`.
    CapacityExceeded { limit: usize },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::BadCell { cell } => write!(f, "cell index {cell} out of range"),
            CacheError::EvictEmpty { cell } => write!(f, "cannot evict empty cell {cell}"),
            CacheError::EvictFetching { cell } => {
                write!(f, "cannot evict cell {cell}: a fetch is in flight")
            }
            CacheError::EvictPinned { cell } => {
                write!(
                    f,
                    "cannot evict cell {cell}: its page is requested this parallel step"
                )
            }
            CacheError::FetchIntoOccupied { cell } => {
                write!(f, "cannot fetch into occupied cell {cell}")
            }
            CacheError::DuplicatePage { page } => {
                write!(f, "page {page} is already cached or in flight")
            }
            CacheError::CapacityExceeded { limit } => {
                write!(
                    f,
                    "cannot start a fetch: cache is at its capacity limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// A `K`-cell shared cache with per-cell ownership bookkeeping.
///
/// *Ownership* records which core's request brought a page in. The engine
/// maintains it for every strategy; shared strategies may ignore it, while
/// partition strategies use it to account part occupancy.
#[derive(Clone, Debug)]
pub struct Cache {
    cells: Vec<CellState>,
    owner: Vec<Option<usize>>,
    /// Resident/in-flight page → cell. Point lookups only (never
    /// iterated), so the deterministic [`FxHashMap`] is safe here.
    index: FxHashMap<PageId, usize>,
    owned_counts: Vec<usize>,
    in_flight: Vec<usize>,
    /// Reverse index: `in_flight_slot[cell]` is the cell's position in
    /// `in_flight` (`usize::MAX` when the cell holds no fetch), so the
    /// event engine's per-completion [`Cache::promote_cell`] is O(1)
    /// instead of an O(in-flight) scan — in sparse large-τ regimes nearly
    /// every core is mid-fetch, which would make that scan O(p) per event.
    in_flight_slot: Vec<usize>,
    pinned: Vec<bool>,
    /// Cells pinned in the current parallel step, so [`Cache::clear_pins`]
    /// resets exactly those instead of an O(K) fill.
    pinned_cells: Vec<usize>,
    /// Bitset of empty cells, one bit per cell; bit set ⇔ cell empty.
    /// [`Cache::empty_cell`] takes the lowest set bit, preserving the
    /// historical lowest-index-first placement order.
    free: Vec<u64>,
    /// The capacity limit `K(t)` currently in force: at most this many
    /// cells may be occupied. Equal to `cells.len()` under a fixed
    /// capacity; under a [`crate::CapacitySchedule`] the cell count is the
    /// schedule's maximum and the engine moves this limit at each
    /// capacity change. Occupancy may transiently exceed a freshly
    /// lowered limit while pinned or in-flight cells block the shrink;
    /// the engines evict back down as soon as cells become evictable.
    limit: usize,
}

impl Cache {
    /// Create an empty cache with `cache_size` cells serving `num_cores` cores.
    pub fn new(cache_size: usize, num_cores: usize) -> Self {
        let words = cache_size.div_ceil(64);
        let mut free = vec![u64::MAX; words];
        if let Some(last) = free.last_mut() {
            let tail = cache_size % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        if cache_size == 0 {
            free.clear();
        }
        Cache {
            cells: vec![CellState::Empty; cache_size],
            owner: vec![None; cache_size],
            index: FxHashMap::with_capacity_and_hasher(cache_size, Default::default()),
            owned_counts: vec![0; num_cores],
            in_flight: Vec::with_capacity(num_cores),
            in_flight_slot: vec![usize::MAX; cache_size],
            pinned: vec![false; cache_size],
            pinned_cells: Vec::with_capacity(num_cores),
            free,
            limit: cache_size,
        }
    }

    /// The capacity limit currently in force (see the `limit` field).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Move the capacity limit to `limit` (a capacity-schedule change).
    /// Raising it makes spare cells usable again; lowering it does not
    /// itself evict — the engine evicts down via the strategy's shrink
    /// hook.
    pub fn set_limit(&mut self, limit: usize) {
        self.limit = limit;
    }

    /// Number of occupied cells in excess of the current limit — how many
    /// evictions a shrink still owes. Zero under fixed capacity.
    pub fn over_limit(&self) -> usize {
        self.index.len().saturating_sub(self.limit)
    }

    #[inline]
    fn mark_free(&mut self, cell: usize) {
        self.free[cell / 64] |= 1u64 << (cell % 64);
    }

    #[inline]
    fn mark_used(&mut self, cell: usize) {
        self.free[cell / 64] &= !(1u64 << (cell % 64));
    }

    /// Pin every cell currently holding one of `pages` for the ongoing
    /// parallel step: pinned cells cannot be evicted until
    /// [`Cache::clear_pins`]. The engine pins all simultaneously requested
    /// pages, mirroring the `R(x) ⊆ C'` constraint of Algorithms 1 and 2.
    pub fn pin_pages<I: IntoIterator<Item = PageId>>(&mut self, pages: I) {
        for page in pages {
            self.pin_page(page);
        }
    }

    /// Pin the cell holding `page` (resident or in flight), if any.
    /// See [`Cache::pin_pages`].
    pub fn pin_page(&mut self, page: PageId) {
        if let Some(&cell) = self.index.get(&page) {
            if !self.pinned[cell] {
                self.pinned[cell] = true;
                self.pinned_cells.push(cell);
            }
        }
    }

    /// Remove every pin (end of the parallel step). O(pins), not O(K).
    pub fn clear_pins(&mut self) {
        for cell in self.pinned_cells.drain(..) {
            self.pinned[cell] = false;
        }
    }

    /// Whether `cell` is pinned for the ongoing parallel step.
    pub fn is_pinned(&self, cell: usize) -> bool {
        self.pinned[cell]
    }

    /// Iterate `(cell, page, owner)` over resident pages that may legally
    /// be evicted right now (resident and not pinned).
    pub fn evictable_cells(&self) -> impl Iterator<Item = (usize, PageId, Option<usize>)> + '_ {
        self.present_cells()
            .filter(|(cell, _, _)| !self.pinned[*cell])
    }

    /// Iterate `(cell, page)` over evictable resident pages owned by `core`.
    pub fn evictable_cells_of(&self, core: usize) -> impl Iterator<Item = (usize, PageId)> + '_ {
        self.evictable_cells()
            .filter(move |(_, _, o)| *o == Some(core))
            .map(|(c, p, _)| (c, p))
    }

    /// Number of cells `K`.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` iff the cache has no cells (never the case for a validated config).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// State of cell `cell`.
    pub fn cell(&self, cell: usize) -> CellState {
        self.cells[cell]
    }

    /// Core that brought the page in cell `cell`, if occupied.
    pub fn owner(&self, cell: usize) -> Option<usize> {
        self.owner[cell]
    }

    /// Number of cells (resident or fetching) owned by `core`.
    pub fn owned_count(&self, core: usize) -> usize {
        self.owned_counts[core]
    }

    /// Total number of occupied cells (resident or fetching).
    pub fn occupied(&self) -> usize {
        self.index.len()
    }

    /// Look up a page. Call [`Cache::promote_due`] first so that completed
    /// fetches read as `Present`.
    pub fn lookup(&self, page: PageId) -> Lookup {
        match self.index.get(&page) {
            None => Lookup::Absent,
            Some(&cell) => match self.cells[cell] {
                CellState::Present(_) => Lookup::Present { cell },
                CellState::Fetching { ready_at, .. } => Lookup::Fetching { cell, ready_at },
                CellState::Empty => unreachable!("index points at empty cell"),
            },
        }
    }

    /// `true` iff `page` is resident (not merely in flight).
    pub fn contains_resident(&self, page: PageId) -> bool {
        matches!(self.lookup(page), Lookup::Present { .. })
    }

    /// Cell index holding `page` (resident or in flight).
    pub fn cell_of(&self, page: PageId) -> Option<usize> {
        self.index.get(&page).copied()
    }

    /// Convert every fetch whose `ready_at ≤ now` into a resident page.
    pub fn promote_due(&mut self, now: Time) {
        let mut slot = 0;
        while slot < self.in_flight.len() {
            let cell = self.in_flight[slot];
            match self.cells[cell] {
                CellState::Fetching { page, ready_at } if ready_at <= now => {
                    self.cells[cell] = CellState::Present(page);
                    self.drop_in_flight_slot(slot);
                }
                CellState::Fetching { .. } => slot += 1,
                _ => self.drop_in_flight_slot(slot),
            }
        }
    }

    /// Remove the entry at `slot` from the in-flight list, keeping the
    /// reverse index consistent. O(1) via swap-remove; the list's order is
    /// not observable.
    #[inline]
    fn drop_in_flight_slot(&mut self, slot: usize) {
        let cell = self.in_flight.swap_remove(slot);
        self.in_flight_slot[cell] = usize::MAX;
        if let Some(&moved) = self.in_flight.get(slot) {
            self.in_flight_slot[moved] = slot;
        }
    }

    /// Promote the single fetch in `cell`, if there is one and its
    /// `ready_at ≤ now`. Returns `true` iff a promotion happened.
    ///
    /// This is the event-engine counterpart of [`Cache::promote_due`]:
    /// the simulator tracks completion times in its own min-queue and
    /// promotes exactly the due cells, instead of re-scanning the whole
    /// in-flight list every step. The in-flight list is kept consistent
    /// (removal order within it is not observable — it only backs
    /// [`Cache::promote_due`], whose per-cell promotions are independent,
    /// and [`Cache::fetches_in_flight`]).
    pub fn promote_cell(&mut self, cell: usize, now: Time) -> bool {
        match self.cells.get(cell) {
            Some(&CellState::Fetching { page, ready_at }) if ready_at <= now => {
                self.cells[cell] = CellState::Present(page);
                let slot = self.in_flight_slot[cell];
                debug_assert!(slot != usize::MAX, "fetching cell missing from list");
                self.drop_in_flight_slot(slot);
                true
            }
            _ => false,
        }
    }

    /// First empty cell usable under the current capacity limit, if any.
    /// O(K/64) via the free-cell bitset rather than an O(K) cell scan.
    /// Returns `None` when occupancy has reached `K(t)` even if spare
    /// cells exist beyond the limit, so strategies written as
    /// `empty_cell().or_else(pick victim)` participate in dynamic
    /// capacity without change. (Under a fixed capacity the limit equals
    /// the cell count, so the guard is equivalent to the bitset being
    /// empty and behavior is identical.)
    pub fn empty_cell(&self) -> Option<usize> {
        if self.index.len() >= self.limit {
            return None;
        }
        for (i, &word) in self.free.iter().enumerate() {
            if word != 0 {
                return Some(i * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterate `(cell, page, owner)` over resident pages, in cell order.
    pub fn present_cells(&self) -> impl Iterator<Item = (usize, PageId, Option<usize>)> + '_ {
        self.cells.iter().enumerate().filter_map(|(i, c)| match c {
            CellState::Present(p) => Some((i, *p, self.owner[i])),
            _ => None,
        })
    }

    /// Iterate `(cell, page, owner)` over resident pages owned by `core`.
    pub fn present_cells_of(&self, core: usize) -> impl Iterator<Item = (usize, PageId)> + '_ {
        self.present_cells()
            .filter(move |(_, _, o)| *o == Some(core))
            .map(|(c, p, _)| (c, p))
    }

    /// All resident pages, in cell order.
    pub fn present_pages(&self) -> Vec<PageId> {
        self.present_cells().map(|(_, p, _)| p).collect()
    }

    /// Evict the resident page in `cell`, leaving it empty. Fails on
    /// empty, fetching, or pinned cells.
    pub fn evict(&mut self, cell: usize) -> Result<PageId, CacheError> {
        if self.pinned.get(cell).copied().unwrap_or(false) {
            return Err(CacheError::EvictPinned { cell });
        }
        match self.cells.get(cell) {
            None => Err(CacheError::BadCell { cell }),
            Some(CellState::Empty) => Err(CacheError::EvictEmpty { cell }),
            Some(CellState::Fetching { .. }) => Err(CacheError::EvictFetching { cell }),
            Some(CellState::Present(page)) => {
                let page = *page;
                self.index.remove(&page);
                if let Some(core) = self.owner[cell].take() {
                    self.owned_counts[core] -= 1;
                }
                self.cells[cell] = CellState::Empty;
                self.mark_free(cell);
                Ok(page)
            }
        }
    }

    /// Begin fetching `page` for `core` into the empty cell `cell`; the page
    /// becomes resident at `ready_at`.
    pub fn start_fetch(
        &mut self,
        cell: usize,
        page: PageId,
        core: usize,
        ready_at: Time,
    ) -> Result<(), CacheError> {
        match self.cells.get(cell) {
            None => return Err(CacheError::BadCell { cell }),
            Some(CellState::Empty) => {}
            Some(_) => return Err(CacheError::FetchIntoOccupied { cell }),
        }
        if self.index.contains_key(&page) {
            return Err(CacheError::DuplicatePage { page });
        }
        if self.index.len() >= self.limit {
            return Err(CacheError::CapacityExceeded { limit: self.limit });
        }
        self.cells[cell] = CellState::Fetching { page, ready_at };
        self.owner[cell] = Some(core);
        self.owned_counts[core] += 1;
        self.index.insert(page, cell);
        self.in_flight_slot[cell] = self.in_flight.len();
        self.in_flight.push(cell);
        self.mark_used(cell);
        Ok(())
    }

    /// Number of fetches currently in flight.
    pub fn fetches_in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// `true` iff `page` is resident and not pinned, i.e. a legal victim
    /// for the current parallel step.
    pub fn is_evictable_page(&self, page: PageId) -> bool {
        match self.index.get(&page) {
            Some(&cell) => self.cells[cell].is_present() && !self.pinned[cell],
            None => false,
        }
    }

    /// Exhaustively check the internal invariants that the incremental
    /// bookkeeping (index, ownership counts, free bitset, in-flight list,
    /// pin dirty-list) must preserve. Returns a description of the first
    /// violation found. Intended for tests and the property suite; O(K).
    pub fn debug_validate(&self) -> Result<(), String> {
        let k = self.cells.len();
        if self.owner.len() != k || self.pinned.len() != k {
            return Err("owner/pinned length mismatch".into());
        }
        let mut occupied = 0usize;
        let mut fetching = 0usize;
        let mut counts = vec![0usize; self.owned_counts.len()];
        for (cell, state) in self.cells.iter().enumerate() {
            let free_bit = self.free[cell / 64] >> (cell % 64) & 1 == 1;
            match state {
                CellState::Empty => {
                    if !free_bit {
                        return Err(format!("empty cell {cell} not in free bitset"));
                    }
                    if self.owner[cell].is_some() {
                        return Err(format!("empty cell {cell} has an owner"));
                    }
                }
                CellState::Present(page) | CellState::Fetching { page, .. } => {
                    if free_bit {
                        return Err(format!("occupied cell {cell} in free bitset"));
                    }
                    occupied += 1;
                    if matches!(state, CellState::Fetching { .. }) {
                        fetching += 1;
                        let slot = self.in_flight_slot[cell];
                        if self.in_flight.get(slot) != Some(&cell) {
                            return Err(format!(
                                "fetching cell {cell} reverse-indexed to slot {slot}, \
                                 which does not hold it"
                            ));
                        }
                    } else if self.in_flight_slot[cell] != usize::MAX {
                        return Err(format!("non-fetching cell {cell} has an in-flight slot"));
                    }
                    match self.index.get(page) {
                        Some(&c) if c == cell => {}
                        other => {
                            return Err(format!(
                                "index maps page {page} to {other:?}, cells say cell {cell}"
                            ))
                        }
                    }
                    match self.owner[cell] {
                        Some(core) if core < counts.len() => counts[core] += 1,
                        other => return Err(format!("occupied cell {cell} has owner {other:?}")),
                    }
                }
            }
            if self.pinned[cell] && !self.pinned_cells.contains(&cell) {
                return Err(format!("pinned cell {cell} missing from pin dirty-list"));
            }
        }
        if self.index.len() != occupied {
            return Err(format!(
                "index has {} entries but {} cells are occupied",
                self.index.len(),
                occupied
            ));
        }
        if self.in_flight.len() != fetching {
            return Err(format!(
                "in-flight list has {} entries but {} cells are fetching",
                self.in_flight.len(),
                fetching
            ));
        }
        if counts != self.owned_counts {
            return Err(format!(
                "owned_counts {:?} disagree with recount {:?}",
                self.owned_counts, counts
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn fetch_then_promote_then_lookup() {
        let mut c = Cache::new(3, 2);
        assert_eq!(c.lookup(p(1)), Lookup::Absent);
        c.start_fetch(0, p(1), 0, 5).unwrap();
        assert_eq!(
            c.lookup(p(1)),
            Lookup::Fetching {
                cell: 0,
                ready_at: 5
            }
        );
        assert_eq!(c.fetches_in_flight(), 1);
        c.promote_due(4);
        assert_eq!(
            c.lookup(p(1)),
            Lookup::Fetching {
                cell: 0,
                ready_at: 5
            }
        );
        c.promote_due(5);
        assert_eq!(c.lookup(p(1)), Lookup::Present { cell: 0 });
        assert_eq!(c.fetches_in_flight(), 0);
        assert!(c.contains_resident(p(1)));
    }

    #[test]
    fn ownership_accounting() {
        let mut c = Cache::new(3, 2);
        c.start_fetch(0, p(1), 0, 1).unwrap();
        c.start_fetch(1, p(2), 1, 1).unwrap();
        c.start_fetch(2, p(3), 1, 1).unwrap();
        c.promote_due(1);
        assert_eq!(c.owned_count(0), 1);
        assert_eq!(c.owned_count(1), 2);
        assert_eq!(c.occupied(), 3);
        assert_eq!(c.evict(1).unwrap(), p(2));
        assert_eq!(c.owned_count(1), 1);
        assert_eq!(c.occupied(), 2);
        assert_eq!(c.empty_cell(), Some(1));
        let owned: Vec<PageId> = c.present_cells_of(1).map(|(_, pg)| pg).collect();
        assert_eq!(owned, vec![p(3)]);
    }

    #[test]
    fn cannot_evict_fetching_or_empty() {
        let mut c = Cache::new(2, 1);
        c.start_fetch(0, p(1), 0, 10).unwrap();
        assert_eq!(
            c.evict(0).unwrap_err(),
            CacheError::EvictFetching { cell: 0 }
        );
        assert_eq!(c.evict(1).unwrap_err(), CacheError::EvictEmpty { cell: 1 });
        assert_eq!(c.evict(9).unwrap_err(), CacheError::BadCell { cell: 9 });
    }

    #[test]
    fn cannot_double_fetch_or_fetch_into_occupied() {
        let mut c = Cache::new(2, 1);
        c.start_fetch(0, p(1), 0, 1).unwrap();
        assert_eq!(
            c.start_fetch(0, p(2), 0, 1).unwrap_err(),
            CacheError::FetchIntoOccupied { cell: 0 }
        );
        assert_eq!(
            c.start_fetch(1, p(1), 0, 1).unwrap_err(),
            CacheError::DuplicatePage { page: p(1) }
        );
    }

    #[test]
    fn present_pages_in_cell_order() {
        let mut c = Cache::new(3, 1);
        c.start_fetch(2, p(9), 0, 1).unwrap();
        c.start_fetch(0, p(4), 0, 1).unwrap();
        c.promote_due(1);
        assert_eq!(c.present_pages(), vec![p(4), p(9)]);
    }

    #[test]
    fn pinned_pages_cannot_be_evicted() {
        let mut c = Cache::new(3, 2);
        c.start_fetch(0, p(1), 0, 1).unwrap();
        c.start_fetch(1, p(2), 1, 1).unwrap();
        c.promote_due(1);
        c.pin_pages([p(1), p(99)]); // absent pages are ignored
        assert!(c.is_pinned(0));
        assert!(!c.is_pinned(1));
        assert_eq!(c.evict(0).unwrap_err(), CacheError::EvictPinned { cell: 0 });
        assert_eq!(c.evict(1).unwrap(), p(2));
        let evictable: Vec<PageId> = c.evictable_cells().map(|(_, pg, _)| pg).collect();
        assert!(evictable.is_empty());
        c.clear_pins();
        assert_eq!(c.evict(0).unwrap(), p(1));
    }

    #[test]
    fn evictable_cells_filter_pins_and_fetches() {
        let mut c = Cache::new(3, 2);
        c.start_fetch(0, p(1), 0, 1).unwrap();
        c.start_fetch(1, p(2), 0, 1).unwrap();
        c.start_fetch(2, p(3), 1, 10).unwrap(); // stays in flight
        c.promote_due(1);
        c.pin_pages([p(2)]);
        let evictable: Vec<PageId> = c.evictable_cells().map(|(_, pg, _)| pg).collect();
        assert_eq!(evictable, vec![p(1)]);
        let of0: Vec<PageId> = c.evictable_cells_of(0).map(|(_, pg)| pg).collect();
        assert_eq!(of0, vec![p(1)]);
    }

    #[test]
    fn free_bitset_tracks_empties_across_words() {
        // >64 cells exercises multi-word bitset boundaries.
        let mut c = Cache::new(130, 1);
        assert_eq!(c.empty_cell(), Some(0));
        for i in 0..130u32 {
            c.start_fetch(i as usize, p(i), 0, 1).unwrap();
        }
        c.promote_due(1);
        assert_eq!(c.empty_cell(), None);
        c.evict(127).unwrap();
        assert_eq!(c.empty_cell(), Some(127));
        c.evict(64).unwrap();
        assert_eq!(c.empty_cell(), Some(64));
        c.evict(0).unwrap();
        assert_eq!(c.empty_cell(), Some(0));
        c.debug_validate().unwrap();
    }

    #[test]
    fn is_evictable_page_tracks_residency_and_pins() {
        let mut c = Cache::new(3, 1);
        c.start_fetch(0, p(1), 0, 1).unwrap();
        c.start_fetch(1, p(2), 0, 10).unwrap(); // still in flight
        c.promote_due(1);
        assert!(c.is_evictable_page(p(1)));
        assert!(!c.is_evictable_page(p(2)));
        assert!(!c.is_evictable_page(p(9)));
        c.pin_pages([p(1)]);
        assert!(!c.is_evictable_page(p(1)));
        c.clear_pins();
        assert!(c.is_evictable_page(p(1)));
        c.debug_validate().unwrap();
    }

    #[test]
    fn debug_validate_passes_through_a_mutation_sequence() {
        let mut c = Cache::new(5, 2);
        c.debug_validate().unwrap();
        c.start_fetch(3, p(7), 1, 4).unwrap();
        c.debug_validate().unwrap();
        c.promote_due(4);
        c.pin_pages([p(7)]);
        c.debug_validate().unwrap();
        c.clear_pins();
        c.evict(3).unwrap();
        c.debug_validate().unwrap();
    }

    #[test]
    fn cell_state_helpers() {
        assert_eq!(CellState::Empty.page(), None);
        assert_eq!(CellState::Present(p(3)).page(), Some(p(3)));
        assert_eq!(
            CellState::Fetching {
                page: p(4),
                ready_at: 2
            }
            .page(),
            Some(p(4))
        );
        assert!(CellState::Present(p(1)).is_present());
        assert!(!CellState::Empty.is_present());
    }
}
