//! # mcp-core — the multicore paging model
//!
//! Executable form of the cache model of López-Ortiz & Salinger, *Paging
//! for Multicore Processors* (UW TR CS-2011-12; SPAA'11 brief
//! announcement): `p` request sequences served in parallel against a shared
//! cache of `K` pages, where every request must be served on arrival, the
//! only algorithmic freedom is the choice of victim on a fault, and each
//! fault delays the remaining requests of its core by an additive `τ`.
//!
//! * [`types`] — pages, workloads, configuration.
//! * [`cache`] — the `K`-cell cache with fetch-in-progress cells.
//! * [`strategy`] — the [`CacheStrategy`] decision trait.
//! * [`sim`] — the discrete-event engine, step-wise or run-to-completion.
//! * [`tick`] — the scan-based engine it replaced, kept as a
//!   differential-verification tier.
//! * [`online`] — the incremental engine behind `mcp serve`: requests
//!   arrive one at a time and timesteps commit under a safe-horizon rule
//!   that keeps results bit-identical to the offline run.
//! * [`events`] — analytics over event traces (effective partitions,
//!   eviction pressure, outcome tallies).
//! * [`hash`] — the deterministic fast hasher behind the hot-path
//!   page maps.
//! * [`budget`] — resource governance: budgets (deadline / state cap /
//!   memory watermark / cancellation) for the anytime offline solvers.
//!
//! ```
//! use mcp_core::{simulate, CacheStrategy, Cache, PageId, SimConfig, Time, Workload};
//!
//! /// Evict the lowest-indexed resident page (a toy policy).
//! struct FirstFit;
//! impl CacheStrategy for FirstFit {
//!     fn name(&self) -> String { "FirstFit".into() }
//!     fn choose_cell(&mut self, _core: usize, _page: PageId, _t: Time, cache: &Cache) -> usize {
//!         cache.empty_cell()
//!             .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
//!             .expect("victim exists")
//!     }
//! }
//!
//! let workload = Workload::from_u32([vec![1, 2, 1, 2], vec![7, 8, 7, 8]]).unwrap();
//! let result = simulate(&workload, SimConfig::new(4, 2), FirstFit).unwrap();
//! assert_eq!(result.total_faults(), 4); // cold misses only: everything fits
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod capacity;
pub mod events;
pub mod hash;
pub mod online;
pub mod sim;
pub mod strategy;
pub mod tick;
pub mod types;

pub use budget::{Budget, TripReason};
pub use cache::{Cache, CacheError, CellState, Lookup};
pub use capacity::{CapacityError, CapacitySchedule};
pub use events::{
    evictions_by_page, inter_fault_times, occupancy_timeline, outcome_counts, OutcomeCounts,
};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use online::{OnlineError, OnlineSimulator};
pub use sim::{
    simulate, simulate_with_capacity, Outcome, Served, SimError, SimResult, Simulator, StepReport,
};
pub use strategy::CacheStrategy;
pub use tick::{simulate_tick, simulate_tick_with_capacity, TickSimulator};
pub use types::{ModelError, PageId, SimConfig, Time, Workload};
