//! Fundamental model types: pages, time, workloads and simulation parameters.
//!
//! The model follows Section 3 of López-Ortiz & Salinger: a multicore
//! processor with `p` cores shares a cache of `K` pages. The input is a
//! multiset of request sequences `R = {R_1, ..., R_p}`, one per core. A
//! parallel request is served in one parallel step; a miss delays the
//! remaining requests of the faulting core by an additive `τ`.

use std::collections::HashSet;
use std::fmt;

/// Discrete simulation time. The first requests issue at `t = 1`.
pub type Time = u64;

/// Identifier of a page in the (conceptually unbounded) slow memory.
///
/// Pages are plain opaque identifiers; two requests refer to the same page
/// iff their `PageId`s are equal. The universe size `N` of an instance is
/// simply the number of distinct identifiers appearing in its workload.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for PageId {
    fn from(v: u32) -> Self {
        PageId(v)
    }
}

/// Parameters of the shared-cache model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Cache size `K`, in pages (cells).
    pub cache_size: usize,
    /// Additive delay `τ ≥ 0` a miss imposes on the remaining requests of
    /// the faulting core. The total service time of a miss is `τ + 1`
    /// timesteps (Hassidim's "fetching time").
    pub tau: u64,
}

impl SimConfig {
    /// Convenience constructor.
    pub const fn new(cache_size: usize, tau: u64) -> Self {
        SimConfig { cache_size, tau }
    }

    /// Validate the configuration against a workload.
    ///
    /// Requires `K ≥ 1` and `K ≥ p`: with at most one outstanding fetch per
    /// core and faulting cores never mid-fetch, `K ≥ p` guarantees an
    /// evictable cell always exists (the paper assumes the far stronger
    /// tall-cache condition `K ≥ p²`).
    pub fn validate(&self, workload: &Workload) -> Result<(), ModelError> {
        if self.cache_size == 0 {
            return Err(ModelError::EmptyCache);
        }
        if self.cache_size < workload.num_cores() {
            return Err(ModelError::CacheSmallerThanCores {
                cache_size: self.cache_size,
                cores: workload.num_cores(),
            });
        }
        Ok(())
    }
}

/// Errors arising from malformed model inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ModelError {
    /// The workload has no request sequences.
    NoSequences,
    /// `K = 0`.
    EmptyCache,
    /// `K < p`: a timestep could demand more cells than exist.
    CacheSmallerThanCores { cache_size: usize, cores: usize },
    /// A capacity schedule dips below the number of cores: `min_t K(t) < p`
    /// would leave some parallel step with fewer cells than simultaneously
    /// pinned pages.
    CapacityBelowCores { min_k: usize, cores: usize },
    /// A capacity schedule's initial capacity disagrees with the
    /// configuration's `cache_size` (the two must name the same `K(1)`).
    CapacityMismatch { config_k: usize, initial_k: usize },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoSequences => write!(f, "workload contains no request sequences"),
            ModelError::EmptyCache => write!(f, "cache size K must be at least 1"),
            ModelError::CacheSmallerThanCores { cache_size, cores } => write!(
                f,
                "cache size K = {cache_size} is smaller than the number of cores p = {cores}"
            ),
            ModelError::CapacityBelowCores { min_k, cores } => write!(
                f,
                "capacity schedule dips to K(t) = {min_k}, below the number of cores p = {cores}"
            ),
            ModelError::CapacityMismatch {
                config_k,
                initial_k,
            } => write!(
                f,
                "config cache size K = {config_k} disagrees with the capacity schedule's \
                 initial capacity {initial_k}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// A multiset of per-core request sequences `R = {R_1, ..., R_p}`.
///
/// Core `j`'s sequence is `sequences()[j]`; cores are indexed from 0. Empty
/// per-core sequences are permitted (such cores simply never issue).
///
/// `Display` prints the compact text-trace form — one `core: page page …`
/// row per core, parseable by `mcp_workloads::read_text` — and `Debug`
/// prints the same rows behind a `p = …` header on a fresh line, so
/// assertion failures and shrunk fuzz counterexamples paste directly into
/// a trace file.
#[derive(Clone, PartialEq, Eq)]
pub struct Workload {
    sequences: Vec<Vec<PageId>>,
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (core, seq) in self.sequences.iter().enumerate() {
            write!(f, "{core}:")?;
            for page in seq {
                write!(f, " {}", page.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n# p = {}", self.num_cores())?;
        write!(f, "{self}")
    }
}

impl Workload {
    /// Build a workload from per-core sequences.
    pub fn new(sequences: Vec<Vec<PageId>>) -> Result<Self, ModelError> {
        if sequences.is_empty() {
            return Err(ModelError::NoSequences);
        }
        Ok(Workload { sequences })
    }

    /// Build a workload from raw `u32` page numbers (test/dev convenience).
    pub fn from_u32<S, I>(sequences: I) -> Result<Self, ModelError>
    where
        S: IntoIterator<Item = u32>,
        I: IntoIterator<Item = S>,
    {
        Workload::new(
            sequences
                .into_iter()
                .map(|s| s.into_iter().map(PageId).collect())
                .collect(),
        )
    }

    /// Number of cores `p`.
    pub fn num_cores(&self) -> usize {
        self.sequences.len()
    }

    /// The per-core sequences.
    pub fn sequences(&self) -> &[Vec<PageId>] {
        &self.sequences
    }

    /// Core `j`'s sequence.
    pub fn sequence(&self, core: usize) -> &[PageId] {
        &self.sequences[core]
    }

    /// Length `n_j` of core `j`'s sequence.
    pub fn len(&self, core: usize) -> usize {
        self.sequences[core].len()
    }

    /// `true` iff every sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.sequences.iter().all(|s| s.is_empty())
    }

    /// Total number of requests `n = Σ_j n_j`.
    pub fn total_len(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Length of the longest per-core sequence.
    pub fn max_len(&self) -> usize {
        self.sequences.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Sorted distinct pages appearing anywhere in the workload.
    pub fn universe(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .sequences
            .iter()
            .flatten()
            .copied()
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        pages.sort_unstable();
        pages
    }

    /// Number of distinct pages `w` in the workload.
    pub fn universe_size(&self) -> usize {
        self.sequences
            .iter()
            .flatten()
            .copied()
            .collect::<HashSet<_>>()
            .len()
    }

    /// `true` iff the per-core sequences are pairwise disjoint
    /// (`∩_j R_j = ∅` pairwise, the paper's "disjoint request" condition).
    pub fn is_disjoint(&self) -> bool {
        let mut seen: HashSet<PageId> = HashSet::new();
        for seq in &self.sequences {
            let own: HashSet<PageId> = seq.iter().copied().collect();
            for page in &own {
                if !seen.insert(*page) {
                    return false;
                }
            }
        }
        true
    }

    /// A copy with every sequence truncated to its first `n` requests —
    /// handy for scaling an instance down to exact-solver size.
    pub fn prefix(&self, n: usize) -> Workload {
        Workload {
            sequences: self
                .sequences
                .iter()
                .map(|s| s.iter().copied().take(n).collect())
                .collect(),
        }
    }

    /// A copy keeping only the given cores, in the given order.
    pub fn select_cores(&self, cores: &[usize]) -> Result<Workload, ModelError> {
        let sequences: Vec<Vec<PageId>> =
            cores.iter().map(|&c| self.sequences[c].clone()).collect();
        Workload::new(sequences)
    }

    /// Distinct pages of a single core's sequence, sorted.
    pub fn core_universe(&self, core: usize) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.sequences[core]
            .iter()
            .copied()
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        pages.sort_unstable();
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(7).to_string(), "p7");
        assert_eq!(format!("{:?}", PageId(7)), "p7");
    }

    #[test]
    fn workload_basic_accessors() {
        let w = Workload::from_u32([vec![1, 2, 1], vec![3, 4]]).unwrap();
        assert_eq!(w.num_cores(), 2);
        assert_eq!(w.total_len(), 5);
        assert_eq!(w.max_len(), 3);
        assert_eq!(w.len(0), 3);
        assert_eq!(w.len(1), 2);
        assert!(!w.is_empty());
        assert_eq!(
            w.universe(),
            vec![PageId(1), PageId(2), PageId(3), PageId(4)]
        );
        assert_eq!(w.universe_size(), 4);
    }

    #[test]
    fn workload_rejects_no_sequences() {
        assert_eq!(Workload::new(vec![]).unwrap_err(), ModelError::NoSequences);
    }

    #[test]
    fn workload_allows_empty_core() {
        let w = Workload::from_u32([vec![], vec![1u32]]).unwrap();
        assert_eq!(w.num_cores(), 2);
        assert_eq!(w.total_len(), 1);
    }

    #[test]
    fn disjointness() {
        let disjoint = Workload::from_u32([vec![1, 2], vec![3, 4]]).unwrap();
        assert!(disjoint.is_disjoint());
        let overlapping = Workload::from_u32([vec![1, 2], vec![2, 3]]).unwrap();
        assert!(!overlapping.is_disjoint());
        // A page repeated within one core does not break disjointness.
        let repeated = Workload::from_u32([vec![1, 1, 2], vec![3]]).unwrap();
        assert!(repeated.is_disjoint());
    }

    #[test]
    fn prefix_truncates_every_core() {
        let w = Workload::from_u32([vec![1, 2, 3, 4], vec![7, 8]]).unwrap();
        let p = w.prefix(3);
        assert_eq!(p.len(0), 3);
        assert_eq!(p.len(1), 2);
        assert_eq!(p.sequence(0), &[PageId(1), PageId(2), PageId(3)]);
        // Prefix longer than everything is the identity.
        assert_eq!(w.prefix(100), w);
    }

    #[test]
    fn select_cores_reorders_and_filters() {
        let w = Workload::from_u32([vec![1], vec![2], vec![3]]).unwrap();
        let s = w.select_cores(&[2, 0]).unwrap();
        assert_eq!(s.num_cores(), 2);
        assert_eq!(s.sequence(0), &[PageId(3)]);
        assert_eq!(s.sequence(1), &[PageId(1)]);
        assert!(w.select_cores(&[]).is_err());
    }

    #[test]
    fn core_universe_sorted_distinct() {
        let w = Workload::from_u32([vec![5, 3, 5, 1]]).unwrap();
        assert_eq!(w.core_universe(0), vec![PageId(1), PageId(3), PageId(5)]);
    }

    #[test]
    fn config_validation() {
        let w = Workload::from_u32([vec![1u32], vec![2u32]]).unwrap();
        assert!(SimConfig::new(2, 0).validate(&w).is_ok());
        assert_eq!(
            SimConfig::new(1, 0).validate(&w).unwrap_err(),
            ModelError::CacheSmallerThanCores {
                cache_size: 1,
                cores: 2
            }
        );
        assert_eq!(
            SimConfig::new(0, 0).validate(&w).unwrap_err(),
            ModelError::EmptyCache
        );
    }
    #[test]
    fn workload_display_is_the_text_trace_form() {
        let w = Workload::from_u32([vec![1u32, 2, 1], vec![7u32, 8]]).unwrap();
        assert_eq!(w.to_string(), "0: 1 2 1\n1: 7 8\n");
        assert_eq!(format!("{w:?}"), "\n# p = 2\n0: 1 2 1\n1: 7 8\n");
        // Empty sequences still get their row (cores are positional).
        let w = Workload::from_u32([vec![], vec![5u32]]).unwrap();
        assert_eq!(w.to_string(), "0:\n1: 5\n");
    }
}
