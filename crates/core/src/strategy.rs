//! The [`CacheStrategy`] trait: the full decision surface the paper grants a
//! multicore paging algorithm.
//!
//! In this model the algorithm has **no scheduling power**: every active
//! request must be served the moment it arrives. The only genuine choice is
//! the victim on a fault. Two auxiliary hooks widen the trait just enough to
//! express everything the paper discusses:
//!
//! * [`CacheStrategy::voluntary_evictions`] lets *dishonest* strategies
//!   evict pages without a fault (used to probe Theorem 4, which proves
//!   honesty is WLOG for disjoint sequences);
//! * [`CacheStrategy::begin`] hands offline strategies the whole input
//!   before the run starts (online strategies simply ignore it).

use crate::cache::Cache;
use crate::types::{PageId, SimConfig, Time, Workload};

/// A cache-management strategy: the combination of a (possibly trivial)
/// partition policy and an eviction policy, in the paper's terminology.
///
/// The simulator drives the strategy with callbacks in service order; within
/// one timestep, cores are served in increasing core index (the model's
/// fixed logical order), so a strategy that maintains its own recency
/// counter observes a deterministic total order of events.
pub trait CacheStrategy {
    /// Human-readable name, e.g. `"S_LRU"` or `"sP[2,2]_FIFO"`.
    fn name(&self) -> String;

    /// Called once before the run. Online strategies must not read the
    /// future from `workload`; offline strategies may.
    fn begin(&mut self, workload: &Workload, cfg: &SimConfig) {
        let _ = (workload, cfg);
    }

    /// `core` requested `page` at `time` and it was resident.
    fn on_hit(&mut self, core: usize, page: PageId, time: Time, cache: &Cache) {
        let _ = (core, page, time, cache);
    }

    /// `core` requested `page` at `time` and it was absent: return the cell
    /// to fetch into. The cell must be `Empty` or `Present`; if `Present`,
    /// the engine evicts its page first (reporting it via
    /// [`CacheStrategy::on_evict`]). Returning a `Fetching` cell is an error.
    fn choose_cell(&mut self, core: usize, page: PageId, time: Time, cache: &Cache) -> usize;

    /// A fetch of `page` for `core` has started into `cell` at `time`.
    fn on_fault(&mut self, core: usize, page: PageId, time: Time, cell: usize, cache: &Cache) {
        let _ = (core, page, time, cell, cache);
    }

    /// `page` was evicted from `cell` (forced by a fault placement or by a
    /// voluntary eviction). Strategies drop their metadata for `page` here.
    fn on_evict(&mut self, page: PageId, cell: usize) {
        let _ = (page, cell);
    }

    /// `core` requested `page` at `time` while `page` was already being
    /// fetched for another core (non-disjoint workloads only). The request
    /// counts as a fault for `core` and the core is delayed by `τ`, but no
    /// new cell is consumed.
    fn on_shared_fetch_miss(&mut self, core: usize, page: PageId, time: Time, cache: &Cache) {
        let _ = (core, page, time, cache);
    }

    /// Cells to evict voluntarily at the start of timestep `time`, before
    /// any request is served. Each cell must be `Present`. Honest
    /// strategies (everything except Theorem-4 probes) keep the default.
    fn voluntary_evictions(&mut self, time: Time, cache: &Cache) -> Vec<usize> {
        let _ = (time, cache);
        Vec::new()
    }

    /// The capacity limit changed to `new_k` at `time` (dynamic-capacity
    /// runs only; see [`crate::CapacitySchedule`]). Called after the
    /// cache's limit moved but before any shrink eviction, so the
    /// strategy can re-derive internal sizing — partitioned families
    /// rescale their per-core quotas here. The default does nothing.
    fn on_capacity_change(&mut self, time: Time, new_k: usize, cache: &Cache) {
        let _ = (time, new_k, cache);
    }

    /// Cells to evict because a capacity drop left the cache `need` cells
    /// over its new limit (Peserico shrink semantics: evict down to
    /// `K(t)` before serving). Called after
    /// [`CacheStrategy::on_capacity_change`], with that step's requested
    /// pages already pinned; each returned cell must be `Present` and
    /// unpinned. The engine evicts the returned cells in order (reported
    /// via [`CacheStrategy::on_evict`] and traced like voluntary
    /// evictions) and, if the strategy returns fewer than `need`, evicts
    /// lowest-index evictable cells to cover the shortfall — so the
    /// capacity invariant never depends on strategy cooperation.
    ///
    /// The default matches that fallback: the `need` lowest-index
    /// evictable cells.
    fn shrink_victims(&mut self, need: usize, time: Time, cache: &Cache) -> Vec<usize> {
        let _ = time;
        cache
            .evictable_cells()
            .map(|(cell, _, _)| cell)
            .take(need)
            .collect()
    }

    /// The earliest future timestep at which the strategy wants
    /// [`CacheStrategy::voluntary_evictions`] consulted even if no request
    /// is due then. The engine normally fast-forwards over timesteps where
    /// every core is mid-fetch or finished; in the paper's model a
    /// (dishonest) strategy may still evict at such a timestep, so
    /// schedules that do — e.g. witnesses reconstructed from the full
    /// transition relation of Algorithm 2 — declare those timesteps here.
    ///
    /// # Boundary contract
    ///
    /// Both engines ([`Simulator`] and [`TickSimulator`]) implement exactly
    /// these semantics, with `last_time` the last served timestep (0 before
    /// the first step) and `next_request` the minimum ready time over
    /// unfinished cores:
    ///
    /// * **Stale** — a declared time `vt ≤ last_time` is ignored. The
    ///   engine never re-serves or rewinds to a past timestep; the
    ///   declaration is simply not an event.
    /// * **Quiet** — `last_time < vt < next_request`: the engine serves a
    ///   step at `vt` with no due requests (voluntary evictions only; the
    ///   [`StepReport::served`] list is empty).
    /// * **Coincident** — `vt == next_request`: the declaration folds into
    ///   the request step. [`CacheStrategy::voluntary_evictions`] is
    ///   consulted exactly once at `vt`, after pinning that step's
    ///   requested pages, as on every served step — no separate
    ///   voluntary-only step precedes it.
    /// * **Post-final** — a declared time after the last request has been
    ///   served is silently dropped: once every sequence is finished the
    ///   run ends and the declaration is never consulted. (Observable and
    ///   deliberate: makespans and traces must not grow because a strategy
    ///   keeps declaring times forever.)
    ///
    /// Implementations must be *monotone between steps*: the value may
    /// change only as a result of the engine invoking a `&mut self`
    /// callback (`voluntary_evictions` or a serve callback), since the
    /// engine samples it once per step boundary.
    ///
    /// [`Simulator`]: crate::sim::Simulator
    /// [`TickSimulator`]: crate::tick::TickSimulator
    /// [`StepReport::served`]: crate::sim::StepReport
    fn next_voluntary_time(&self) -> Option<Time> {
        None
    }
}

/// Blanket forwarding so `&mut S` and boxed strategies are strategies too.
impl<S: CacheStrategy + ?Sized> CacheStrategy for &mut S {
    fn name(&self) -> String {
        (**self).name()
    }
    fn begin(&mut self, workload: &Workload, cfg: &SimConfig) {
        (**self).begin(workload, cfg)
    }
    fn on_hit(&mut self, core: usize, page: PageId, time: Time, cache: &Cache) {
        (**self).on_hit(core, page, time, cache)
    }
    fn choose_cell(&mut self, core: usize, page: PageId, time: Time, cache: &Cache) -> usize {
        (**self).choose_cell(core, page, time, cache)
    }
    fn on_fault(&mut self, core: usize, page: PageId, time: Time, cell: usize, cache: &Cache) {
        (**self).on_fault(core, page, time, cell, cache)
    }
    fn on_evict(&mut self, page: PageId, cell: usize) {
        (**self).on_evict(page, cell)
    }
    fn on_shared_fetch_miss(&mut self, core: usize, page: PageId, time: Time, cache: &Cache) {
        (**self).on_shared_fetch_miss(core, page, time, cache)
    }
    fn voluntary_evictions(&mut self, time: Time, cache: &Cache) -> Vec<usize> {
        (**self).voluntary_evictions(time, cache)
    }
    fn on_capacity_change(&mut self, time: Time, new_k: usize, cache: &Cache) {
        (**self).on_capacity_change(time, new_k, cache)
    }
    fn shrink_victims(&mut self, need: usize, time: Time, cache: &Cache) -> Vec<usize> {
        (**self).shrink_victims(need, time, cache)
    }
    fn next_voluntary_time(&self) -> Option<Time> {
        (**self).next_voluntary_time()
    }
}

impl<S: CacheStrategy + ?Sized> CacheStrategy for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn begin(&mut self, workload: &Workload, cfg: &SimConfig) {
        (**self).begin(workload, cfg)
    }
    fn on_hit(&mut self, core: usize, page: PageId, time: Time, cache: &Cache) {
        (**self).on_hit(core, page, time, cache)
    }
    fn choose_cell(&mut self, core: usize, page: PageId, time: Time, cache: &Cache) -> usize {
        (**self).choose_cell(core, page, time, cache)
    }
    fn on_fault(&mut self, core: usize, page: PageId, time: Time, cell: usize, cache: &Cache) {
        (**self).on_fault(core, page, time, cell, cache)
    }
    fn on_evict(&mut self, page: PageId, cell: usize) {
        (**self).on_evict(page, cell)
    }
    fn on_shared_fetch_miss(&mut self, core: usize, page: PageId, time: Time, cache: &Cache) {
        (**self).on_shared_fetch_miss(core, page, time, cache)
    }
    fn voluntary_evictions(&mut self, time: Time, cache: &Cache) -> Vec<usize> {
        (**self).voluntary_evictions(time, cache)
    }
    fn on_capacity_change(&mut self, time: Time, new_k: usize, cache: &Cache) {
        (**self).on_capacity_change(time, new_k, cache)
    }
    fn shrink_victims(&mut self, need: usize, time: Time, cache: &Cache) -> Vec<usize> {
        (**self).shrink_victims(need, time, cache)
    }
    fn next_voluntary_time(&self) -> Option<Time> {
        (**self).next_voluntary_time()
    }
}
