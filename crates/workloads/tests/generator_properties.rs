//! Property tests for the beyond-worst-case benchmark generators
//! (`zipf_shared`, `drifting_phases`): seed determinism, advertised
//! shapes, and page-universe bounds.

use mcp_workloads::{drifting_phases, zipf_shared};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zipf_shared_is_seed_deterministic(
        p in 1usize..5,
        n in 1usize..120,
        universe in 1u32..64,
        alpha10 in 0u32..15,
        seed in 0u64..u64::MAX,
    ) {
        let alpha = alpha10 as f64 / 10.0;
        let a = zipf_shared(p, n, universe, alpha, seed);
        let b = zipf_shared(p, n, universe, alpha, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.num_cores(), p);
        for core in 0..p {
            prop_assert_eq!(a.len(core), n);
        }
        // Page ids are the global Zipf ranks: strictly below the universe.
        prop_assert!(a.universe().iter().all(|pg| pg.0 < universe.max(1)));
    }

    #[test]
    fn zipf_shared_seeds_differ(
        p in 1usize..4,
        universe in 8u32..64,
        seed in 0u64..u64::MAX,
    ) {
        let a = zipf_shared(p, 64, universe, 0.9, seed);
        let b = zipf_shared(p, 64, universe, 0.9, seed.wrapping_add(1));
        prop_assert_ne!(a, b);
    }

    #[test]
    fn drifting_phases_is_seed_deterministic(
        p in 1usize..5,
        n in 1usize..120,
        universe in 1u32..128,
        set_size in 1u32..32,
        shift_every in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        let a = drifting_phases(p, n, universe, set_size, shift_every, seed);
        let b = drifting_phases(p, n, universe, set_size, shift_every, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.num_cores(), p);
        for core in 0..p {
            prop_assert_eq!(a.len(core), n);
        }
        // The window wraps modulo the universe: ids never escape it.
        prop_assert!(a.universe().iter().all(|pg| pg.0 < universe));
    }

    #[test]
    fn drifting_phases_window_bound(
        n in 1usize..80,
        universe in 16u32..128,
        set_size in 1u32..16,
        shift_every in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        // With no wrap, phase `q` draws only from its window
        // [q·step, q·step + set_size).
        let w = drifting_phases(1, n, universe, set_size, shift_every, seed);
        let step = set_size / 2 + 1;
        for (i, pg) in w.sequence(0).iter().enumerate() {
            let phase = (i / shift_every) as u32;
            let start = phase.wrapping_mul(step) % universe;
            let offset = (pg.0 + universe - start) % universe;
            prop_assert!(offset < set_size, "request {i} outside its window");
        }
    }
}

/// Empirical-frequency sanity for the shared Zipf stream: observed rank
/// frequencies must decrease (hot ranks dominate) and roughly track the
/// 1/(r+1)^α law — rank 0 vs rank 9 within 2× of the predicted ratio.
#[test]
fn zipf_shared_empirical_frequencies_track_the_law() {
    let universe = 10u32;
    let alpha = 1.0;
    let n = 60_000;
    let w = zipf_shared(1, n, universe, alpha, 123);
    let mut counts = vec![0usize; universe as usize];
    for pg in w.sequence(0) {
        counts[pg.0 as usize] += 1;
    }
    // Monotone non-increasing up to sampling noise on neighbours; enforce
    // on well-separated ranks where the law's gap dwarfs the noise.
    assert!(counts[0] > counts[4] && counts[4] > counts[9], "{counts:?}");
    let predicted = 10.0f64; // (9+1)^1 / (0+1)^1
    let observed = counts[0] as f64 / counts[9].max(1) as f64;
    assert!(
        observed > predicted / 2.0 && observed < predicted * 2.0,
        "rank0/rank9 ratio {observed:.2} vs predicted {predicted:.2}"
    );
}
