//! Property tests: trace formats round-trip arbitrary workloads, and the
//! generators honour their advertised shapes.

use mcp_core::{PageId, Workload};
use mcp_workloads::{from_json, lemma1_lower, lemma4_cyclic, read_text, to_json, write_text};
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop::collection::vec(prop::collection::vec(0u32..1000, 0..30), 1..=4)
        .prop_map(|seqs| Workload::from_u32(seqs).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_roundtrip(w in arb_workload()) {
        let json = to_json(&w);
        prop_assert_eq!(from_json(&json).unwrap(), w);
    }

    #[test]
    fn text_roundtrip(w in arb_workload()) {
        let mut buf = Vec::new();
        write_text(&w, &mut buf).unwrap();
        let parsed = read_text(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(parsed, w);
    }

    #[test]
    fn lemma1_generator_shape(
        sizes in prop::collection::vec(1usize..6, 1..5),
        n in 1usize..40,
    ) {
        let w = lemma1_lower(&sizes, n);
        prop_assert_eq!(w.num_cores(), sizes.len());
        prop_assert!(w.is_disjoint());
        let j_star = (0..sizes.len()).max_by_key(|&j| sizes[j]).unwrap();
        for core in 0..sizes.len() {
            prop_assert_eq!(w.len(core), n);
            let distinct = w.core_universe(core).len();
            if core == j_star {
                prop_assert_eq!(distinct, (sizes[j_star] + 1).min(n));
            } else {
                prop_assert_eq!(distinct, 1);
            }
        }
    }

    #[test]
    fn lemma4_generator_shape(
        p in 1usize..5,
        k_mult in 1usize..4,
        n in 1usize..50,
    ) {
        let k = p * k_mult * p; // divisible by p
        let w = lemma4_cyclic(p, k, n);
        prop_assert_eq!(w.num_cores(), p);
        prop_assert!(w.is_disjoint());
        for core in 0..p {
            prop_assert_eq!(w.core_universe(core).len(), (k / p + 1).min(n));
        }
    }

    #[test]
    fn generators_never_collide_across_cores(
        seed in 0u64..500,
    ) {
        let w = mcp_workloads::random_disjoint(seed, 4, 40, 8);
        prop_assert!(w.is_disjoint());
    }
}

#[test]
fn text_format_tolerates_blank_lines_and_comments() {
    let text = "\n# header\n0: 1 2 3\n\n# middle\n1: 9\n";
    let w = read_text(std::io::Cursor::new(text.as_bytes())).unwrap();
    assert_eq!(w.sequence(0), &[PageId(1), PageId(2), PageId(3)]);
    assert_eq!(w.sequence(1), &[PageId(9)]);
}
