//! Synthetic multiprogrammed workload generators: the realistic scenarios
//! (uniform, Zipf, phased working sets, scans, loops) used by the
//! examples, upper-bound experiments, and property tests.

use mcp_core::{PageId, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Page-id stride separating the cores' disjoint universes.
pub const CORE_STRIDE: u32 = 1 << 20;

fn page(core: usize, local: u32) -> PageId {
    PageId(core as u32 * CORE_STRIDE + local)
}

/// Specification of one core's request pattern.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum CorePattern {
    /// Uniformly random over `universe` pages.
    Uniform { universe: u32 },
    /// Zipf-distributed over `universe` pages with exponent `alpha`
    /// (`alpha = 0` is uniform; realistic request skew is `0.6..1.2`).
    Zipf { universe: u32, alpha: f64 },
    /// Sequential scan over fresh pages, wrapping at `universe`.
    Scan { universe: u32 },
    /// Cyclic loop of `len` pages.
    Loop { len: u32 },
    /// Phased working sets: each phase draws uniformly from `set_size`
    /// fresh-ish pages for `phase_len` requests, then shifts by `shift`.
    Phased {
        set_size: u32,
        phase_len: usize,
        shift: u32,
    },
    /// A single hot page.
    Constant,
}

impl CorePattern {
    fn generate(&self, core: usize, n: usize, rng: &mut StdRng) -> Vec<PageId> {
        match *self {
            CorePattern::Uniform { universe } => (0..n)
                .map(|_| page(core, rng.gen_range(0..universe.max(1))))
                .collect(),
            CorePattern::Zipf { universe, alpha } => {
                // Precompute the CDF of p(r) ∝ 1/(r+1)^alpha.
                let cdf = zipf_cdf(universe, alpha);
                (0..n).map(|_| page(core, zipf_rank(&cdf, rng))).collect()
            }
            CorePattern::Scan { universe } => (0..n)
                .map(|i| page(core, i as u32 % universe.max(1)))
                .collect(),
            CorePattern::Loop { len } => {
                (0..n).map(|i| page(core, i as u32 % len.max(1))).collect()
            }
            CorePattern::Phased {
                set_size,
                phase_len,
                shift,
            } => {
                let set_size = set_size.max(1);
                let phase_len = phase_len.max(1);
                (0..n)
                    .map(|i| {
                        let phase = (i / phase_len) as u32;
                        page(core, phase * shift + rng.gen_range(0..set_size))
                    })
                    .collect()
            }
            CorePattern::Constant => (0..n).map(|_| page(core, 0)).collect(),
        }
    }
}

/// Build a disjoint multiprogrammed workload: one pattern per core, each
/// core issuing `n_per_core` requests from its private page range.
pub fn multiprogrammed(patterns: &[CorePattern], n_per_core: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let sequences = patterns
        .iter()
        .enumerate()
        .map(|(core, pat)| pat.generate(core, n_per_core, &mut rng))
        .collect();
    Workload::new(sequences).expect("nonempty")
}

/// `p` cores of uniform traffic over `universe` private pages each.
pub fn uniform(p: usize, n_per_core: usize, universe: u32, seed: u64) -> Workload {
    multiprogrammed(
        &vec![CorePattern::Uniform { universe }; p],
        n_per_core,
        seed,
    )
}

/// `p` cores of Zipf traffic (`alpha`) over `universe` private pages each.
///
/// ```
/// let w = mcp_workloads::zipf(2, 100, 32, 0.9, 7);
/// assert_eq!(w.num_cores(), 2);
/// assert!(w.is_disjoint());
/// ```
pub fn zipf(p: usize, n_per_core: usize, universe: u32, alpha: f64, seed: u64) -> Workload {
    multiprogrammed(
        &vec![CorePattern::Zipf { universe, alpha }; p],
        n_per_core,
        seed,
    )
}

/// `p` cores with phased working sets (the classic locality model).
pub fn phased(p: usize, n_per_core: usize, set_size: u32, phase_len: usize, seed: u64) -> Workload {
    multiprogrammed(
        &vec![
            CorePattern::Phased {
                set_size,
                phase_len,
                shift: set_size / 2 + 1
            };
            p
        ],
        n_per_core,
        seed,
    )
}

/// A non-disjoint multiprogrammed workload: each core mixes its private
/// Zipf traffic with reads from a `shared` hot region common to all cores
/// (think shared libraries or a shared read-only table). `shared_fraction`
/// is the probability a request targets the shared region.
pub fn shared_hotset(
    p: usize,
    n_per_core: usize,
    private_universe: u32,
    shared_universe: u32,
    shared_fraction: f64,
    seed: u64,
) -> Workload {
    assert!(p >= 1 && shared_universe >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let shared_base = u32::MAX - shared_universe; // outside every private range
    let sequences = (0..p)
        .map(|core| {
            (0..n_per_core)
                .map(|_| {
                    if rng.gen_bool(shared_fraction.clamp(0.0, 1.0)) {
                        PageId(shared_base + rng.gen_range(0..shared_universe))
                    } else {
                        page(core, rng.gen_range(0..private_universe.max(1)))
                    }
                })
                .collect()
        })
        .collect();
    Workload::new(sequences).expect("nonempty")
}

/// `p` cores that fault in staggered phases — the sparse large-τ regime
/// the event engine is built for.
///
/// Core `j` warms up with one fault and `j % stagger` hits on a private
/// hot page, then walks a private cyclic set of `cycle` cold pages. Pick
/// `cycle` larger than the core's share of the cache and every post-warm-up
/// request faults under any demand policy, so each core's steady-state
/// period is exactly `τ + 1` while the warm-up hits offset core `j`'s
/// phase by `j % stagger` timesteps. With `stagger ≤ τ + 1` the cores
/// spread over `stagger` distinct residues mod `τ + 1`: at any timestep
/// only `≈ p / (τ + 1)` cores are due, which is precisely where a
/// per-step `O(p)` scan wastes its work and an event queue pays only for
/// the cores that wake.
pub fn staggered_thrash(
    p: usize,
    n_per_core: usize,
    cycle: u32,
    stagger: usize,
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let cycle = cycle.max(1);
    let stagger = stagger.max(1);
    let sequences = (0..p)
        .map(|core| {
            let warm = core % stagger;
            let start = rng.gen_range(0..cycle);
            (0..n_per_core)
                .map(|i| {
                    if i <= warm {
                        page(core, 0) // one fault, then `warm` hits
                    } else {
                        // Cold pages live at 1..=cycle, cyclically.
                        page(core, 1 + (start + (i - warm - 1) as u32) % cycle)
                    }
                })
                .collect()
        })
        .collect();
    Workload::new(sequences).expect("nonempty")
}

/// `p` cores alternating dense hit-runs with cold miss-bursts.
///
/// Each core loops: a run of `1..=2·hot` requests drawn from a private
/// `hot`-page working set (dense, mostly hits once warm), then a burst of
/// `burst` never-before-seen pages (every one a fault, so the core goes
/// quiet for `burst · (τ + 1)` timesteps). The result interleaves dense
/// regions — where the engines are equally busy — with long sparse gaps
/// that only an event queue skips cheaply.
pub fn bursty(p: usize, n_per_core: usize, hot: u32, burst: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let hot = hot.max(1);
    let sequences = (0..p)
        .map(|core| {
            let mut seq = Vec::with_capacity(n_per_core);
            let mut fresh = hot; // next never-requested local page id
            while seq.len() < n_per_core {
                let run = rng.gen_range(1..=2 * hot as usize);
                for _ in 0..run.min(n_per_core - seq.len()) {
                    seq.push(page(core, rng.gen_range(0..hot)));
                }
                for _ in 0..burst.min(n_per_core - seq.len()) {
                    seq.push(page(core, fresh));
                    fresh += 1;
                }
            }
            seq
        })
        .collect();
    Workload::new(sequences).expect("nonempty")
}

/// Build the CDF of the Zipf distribution `p(r) ∝ 1/(r+1)^alpha` over
/// `universe` ranks, and sample a rank from it.
fn zipf_cdf(universe: u32, alpha: f64) -> Vec<f64> {
    let universe = universe.max(1);
    let weights: Vec<f64> = (0..universe)
        .map(|r| 1.0 / ((r + 1) as f64).powf(alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(universe as usize);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    cdf
}

fn zipf_rank(cdf: &[f64], rng: &mut StdRng) -> u32 {
    let u: f64 = rng.gen();
    (cdf.partition_point(|&c| c < u) as u32).min(cdf.len() as u32 - 1)
}

/// `p` cores all drawing Zipf traffic (`alpha`) from **one shared**
/// `universe` of pages — the benchmark-distribution input class of Kamali
/// & Xu's beyond-worst-case analysis, where hot pages are hot for every
/// core and shared-fetch collisions are the norm rather than an
/// adversarial construction. Page ids are the global ranks `0..universe`,
/// so rank 0 is the hottest page on every core.
///
/// ```
/// let w = mcp_workloads::zipf_shared(3, 100, 32, 0.9, 7);
/// assert_eq!(w.num_cores(), 3);
/// assert!(!w.is_disjoint());
/// ```
pub fn zipf_shared(p: usize, n_per_core: usize, universe: u32, alpha: f64, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let cdf = zipf_cdf(universe, alpha);
    let sequences = (0..p)
        .map(|_| {
            (0..n_per_core)
                .map(|_| PageId(zipf_rank(&cdf, &mut rng)))
                .collect()
        })
        .collect();
    Workload::new(sequences).expect("nonempty")
}

/// `p` cores sharing a working-set window that **drifts** across a common
/// `universe`: every `shift_every` requests the window slides forward by
/// `set_size / 2 + 1` pages (wrapping), and each request draws uniformly
/// from the current window. All cores see the same drift schedule, so the
/// shared working set shifts under every strategy at once — the
/// phase-change stress of beyond-worst-case benchmarks, without the
/// per-core disjointness of [`phased`].
pub fn drifting_phases(
    p: usize,
    n_per_core: usize,
    universe: u32,
    set_size: u32,
    shift_every: usize,
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let universe = universe.max(1);
    let set_size = set_size.clamp(1, universe);
    let shift_every = shift_every.max(1);
    let step = set_size / 2 + 1;
    let sequences = (0..p)
        .map(|_| {
            (0..n_per_core)
                .map(|i| {
                    let phase = (i / shift_every) as u32;
                    let start = phase.wrapping_mul(step) % universe;
                    PageId((start + rng.gen_range(0..set_size)) % universe)
                })
                .collect()
        })
        .collect();
    Workload::new(sequences).expect("nonempty")
}

/// A random disjoint workload for property tests: every parameter drawn
/// from `seed`, guaranteed `K ≥ p`-compatible shapes.
pub fn random_disjoint(seed: u64, max_cores: usize, max_len: usize, max_universe: u32) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = rng.gen_range(1..=max_cores.max(1));
    let sequences = (0..p)
        .map(|core| {
            let n = rng.gen_range(1..=max_len.max(1));
            let u = rng.gen_range(1..=max_universe.max(1));
            (0..n).map(|_| page(core, rng.gen_range(0..u))).collect()
        })
        .collect();
    Workload::new(sequences).expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_seed_deterministic() {
        let a = uniform(3, 50, 10, 42);
        let b = uniform(3, 50, 10, 42);
        assert_eq!(a, b);
        let c = uniform(3, 50, 10, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn cores_are_disjoint() {
        for w in [
            uniform(4, 100, 20, 1),
            zipf(3, 100, 30, 0.9, 2),
            phased(2, 100, 8, 25, 3),
        ] {
            assert!(w.is_disjoint());
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let w = zipf(1, 10_000, 100, 1.2, 7);
        let seq = w.sequence(0);
        let hot = seq.iter().filter(|p| p.0 % CORE_STRIDE == 0).count();
        let cold = seq.iter().filter(|p| p.0 % CORE_STRIDE == 99).count();
        assert!(
            hot > 10 * cold.max(1),
            "rank 0 ({hot}) must dwarf rank 99 ({cold})"
        );
    }

    #[test]
    fn zipf_alpha_zero_is_roughly_uniform() {
        let w = zipf(1, 20_000, 10, 0.0, 11);
        let seq = w.sequence(0);
        for r in 0..10u32 {
            let count = seq.iter().filter(|p| p.0 % CORE_STRIDE == r).count();
            assert!((1500..2600).contains(&count), "rank {r}: {count}");
        }
    }

    #[test]
    fn phased_shifts_working_sets() {
        let w = phased(1, 100, 4, 25, 5);
        let seq = w.sequence(0);
        let first: std::collections::HashSet<_> = seq[..25].iter().collect();
        let last: std::collections::HashSet<_> = seq[75..].iter().collect();
        assert!(first.is_disjoint(&last) || first.intersection(&last).count() <= 1);
    }

    #[test]
    fn scan_and_loop_shapes() {
        let w = multiprogrammed(
            &[
                CorePattern::Scan { universe: 50 },
                CorePattern::Loop { len: 3 },
            ],
            60,
            0,
        );
        assert_eq!(w.core_universe(0).len(), 50);
        assert_eq!(w.core_universe(1).len(), 3);
    }

    #[test]
    fn shared_hotset_is_actually_shared() {
        let w = shared_hotset(3, 400, 16, 4, 0.5, 5);
        assert!(!w.is_disjoint(), "shared region must overlap across cores");
        // Shared pages live at the top of the id space.
        let shared_pages = w.universe().iter().filter(|p| p.0 >= u32::MAX - 4).count();
        assert!((1..=4).contains(&shared_pages));
        // Zero fraction degenerates to disjoint.
        let d = shared_hotset(3, 200, 16, 4, 0.0, 5);
        assert!(d.is_disjoint());
    }

    #[test]
    fn staggered_thrash_has_period_tau_plus_one_tails() {
        let p = 4;
        let w = staggered_thrash(p, 40, 8, 3, 9);
        assert!(w.is_disjoint());
        for core in 0..p {
            let seq = w.sequence(core);
            let warm = core % 3;
            // Warm-up: request 0 and the `warm` hits all target page 0.
            for r in &seq[..=warm] {
                assert_eq!(r.0 % CORE_STRIDE, 0);
            }
            // Tail: cyclic over pages 1..=8 — consecutive requests are
            // distinct, and the walk revisits with period 8.
            let tail = &seq[warm + 1..];
            assert!(tail.windows(2).all(|t| t[0] != t[1]));
            assert_eq!(tail[0], tail[8]);
        }
    }

    #[test]
    fn bursty_mixes_hot_runs_and_fresh_bursts() {
        let w = bursty(2, 500, 4, 6, 13);
        assert!(w.is_disjoint());
        let seq = w.sequence(0);
        assert_eq!(seq.len(), 500);
        let hot = seq.iter().filter(|r| r.0 % CORE_STRIDE < 4).count();
        let cold: std::collections::HashSet<_> =
            seq.iter().filter(|r| r.0 % CORE_STRIDE >= 4).collect();
        assert!(hot > 0 && !cold.is_empty());
        // Cold pages are never repeated: each is a guaranteed fault.
        let cold_total = seq.iter().filter(|r| r.0 % CORE_STRIDE >= 4).count();
        assert_eq!(cold.len(), cold_total);
    }

    #[test]
    fn zipf_shared_overlaps_and_skews() {
        let w = zipf_shared(3, 5_000, 64, 1.0, 21);
        assert!(!w.is_disjoint(), "all cores draw from one universe");
        // Every id is a global rank below the universe.
        assert!(w.universe().iter().all(|p| p.0 < 64));
        // Rank 0 must dwarf the coldest rank on the combined stream.
        let hot: usize = (0..3)
            .map(|c| w.sequence(c).iter().filter(|p| p.0 == 0).count())
            .sum();
        let cold: usize = (0..3)
            .map(|c| w.sequence(c).iter().filter(|p| p.0 == 63).count())
            .sum();
        assert!(hot > 5 * cold.max(1), "rank 0 ({hot}) vs rank 63 ({cold})");
    }

    #[test]
    fn drifting_phases_slides_a_shared_window() {
        let w = drifting_phases(2, 120, 256, 8, 30, 17);
        assert!(!w.is_disjoint(), "cores share the drifting window");
        assert!(w.universe().iter().all(|p| p.0 < 256));
        let seq = w.sequence(0);
        // Phase 0 draws from [0, 8); phase 3 starts at 3·5 = 15 — disjoint.
        let first: std::collections::HashSet<_> = seq[..30].iter().collect();
        let last: std::collections::HashSet<_> = seq[90..].iter().collect();
        assert!(first.is_disjoint(&last), "window must have moved on");
    }

    #[test]
    fn random_disjoint_respects_limits() {
        for seed in 0..20 {
            let w = random_disjoint(seed, 4, 30, 8);
            assert!(w.num_cores() <= 4);
            assert!(w.max_len() <= 30);
            assert!(w.is_disjoint());
        }
    }
}
