//! Workload characterization: reuse distances, working-set curves, and
//! per-core summaries — the quantities that predict how a sequence
//! behaves under the strategies (an LRU stack distance ≤ k is exactly a
//! hit at cache size k).

use mcp_core::{PageId, Workload};
use std::collections::HashMap;

/// Summary of one core's request sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreProfile {
    /// Requests issued.
    pub requests: usize,
    /// Distinct pages touched.
    pub distinct: usize,
    /// Median LRU reuse distance of re-references (`None` if no page is
    /// ever re-referenced).
    pub median_reuse: Option<usize>,
    /// Fraction of requests that are re-references (1 − cold-miss rate).
    pub reuse_fraction: f64,
    /// Working-set sizes at window lengths 8, 64, 512 (mean distinct
    /// pages per window; windows longer than the sequence report
    /// `distinct`).
    pub working_set: [f64; 3],
}

/// LRU reuse distances (stack distances) of every re-reference in `seq`,
/// ascending. First references are excluded.
pub fn reuse_distances(seq: &[PageId]) -> Vec<usize> {
    let mut stack: Vec<PageId> = Vec::new();
    let mut out = Vec::new();
    for &page in seq {
        match stack.iter().position(|&p| p == page) {
            None => stack.insert(0, page),
            Some(depth) => {
                out.push(depth + 1);
                stack.remove(depth);
                stack.insert(0, page);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Mean number of distinct pages per window of `window` consecutive
/// requests (Denning's working set, sampled at every offset).
pub fn working_set_size(seq: &[PageId], window: usize) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    let window = window.max(1);
    if window >= seq.len() {
        return seq.iter().collect::<std::collections::HashSet<_>>().len() as f64;
    }
    // Sliding window with occurrence counts.
    let mut counts: HashMap<PageId, usize> = HashMap::new();
    for &p in &seq[..window] {
        *counts.entry(p).or_insert(0) += 1;
    }
    let mut total = counts.len() as f64;
    let mut samples = 1usize;
    for i in window..seq.len() {
        let leaving = seq[i - window];
        match counts.get_mut(&leaving) {
            Some(c) if *c > 1 => *c -= 1,
            _ => {
                counts.remove(&leaving);
            }
        }
        *counts.entry(seq[i]).or_insert(0) += 1;
        total += counts.len() as f64;
        samples += 1;
    }
    total / samples as f64
}

/// Profile one core's sequence.
pub fn profile_core(seq: &[PageId]) -> CoreProfile {
    let distances = reuse_distances(seq);
    let distinct = seq.iter().collect::<std::collections::HashSet<_>>().len();
    CoreProfile {
        requests: seq.len(),
        distinct,
        median_reuse: if distances.is_empty() {
            None
        } else {
            Some(distances[distances.len() / 2])
        },
        reuse_fraction: if seq.is_empty() {
            0.0
        } else {
            distances.len() as f64 / seq.len() as f64
        },
        working_set: [
            working_set_size(seq, 8),
            working_set_size(seq, 64),
            working_set_size(seq, 512),
        ],
    }
}

/// Profile every core of a workload.
pub fn profile(workload: &Workload) -> Vec<CoreProfile> {
    workload
        .sequences()
        .iter()
        .map(|s| profile_core(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vs: &[u32]) -> Vec<PageId> {
        vs.iter().copied().map(PageId).collect()
    }

    #[test]
    fn reuse_distances_of_a_tight_loop() {
        // 1 2 1 2 1 2: every re-reference has stack distance 2.
        let d = reuse_distances(&seq(&[1, 2, 1, 2, 1, 2]));
        assert_eq!(d, vec![2, 2, 2, 2]);
    }

    #[test]
    fn scan_has_no_reuse() {
        let d = reuse_distances(&seq(&[1, 2, 3, 4, 5]));
        assert!(d.is_empty());
        let p = profile_core(&seq(&[1, 2, 3, 4, 5]));
        assert_eq!(p.median_reuse, None);
        assert_eq!(p.reuse_fraction, 0.0);
        assert_eq!(p.distinct, 5);
    }

    #[test]
    fn working_set_of_a_loop_saturates() {
        let s: Vec<PageId> = seq(&(0..100).map(|i| i % 4).collect::<Vec<_>>());
        // Any window >= 4 sees exactly the 4 loop pages.
        assert!((working_set_size(&s, 8) - 4.0).abs() < 1e-9);
        assert!((working_set_size(&s, 64) - 4.0).abs() < 1e-9);
        // A window of 2 sees exactly 2 distinct pages.
        assert!((working_set_size(&s, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn working_set_edge_cases() {
        assert_eq!(working_set_size(&[], 8), 0.0);
        let s = seq(&[1, 1, 2]);
        assert_eq!(working_set_size(&s, 100), 2.0); // whole-sequence fallback
    }

    #[test]
    fn profile_reports_consistent_shapes() {
        let w = crate::synthetic::zipf(2, 400, 32, 0.9, 3);
        let profiles = profile(&w);
        assert_eq!(profiles.len(), 2);
        for p in profiles {
            assert_eq!(p.requests, 400);
            assert!(p.distinct <= 32);
            assert!(p.reuse_fraction > 0.5, "Zipf traffic reuses heavily");
            assert!(p.working_set[0] <= p.working_set[1] + 1e-9);
            assert!(p.working_set[1] <= p.working_set[2] + 1e-9);
        }
    }

    #[test]
    fn reuse_distance_matches_lru_hit_rule() {
        // A request hits in LRU(k) iff its reuse distance <= k: check the
        // histogram against a direct LRU simulation.
        let w = crate::synthetic::zipf(1, 300, 16, 1.0, 9);
        let s = w.sequence(0);
        let d = reuse_distances(s);
        for k in 1..=6usize {
            let hits_by_distance = d.iter().filter(|&&x| x <= k).count() as u64;
            let faults = mcp_offline_free_lru(s, k);
            assert_eq!(faults, s.len() as u64 - hits_by_distance, "k={k}");
        }
    }

    /// Minimal LRU reference (keeps this crate free of mcp-offline).
    fn mcp_offline_free_lru(seq: &[PageId], k: usize) -> u64 {
        let mut stack: Vec<PageId> = Vec::new();
        let mut faults = 0;
        for &p in seq {
            match stack.iter().position(|&q| q == p) {
                Some(i) => {
                    stack.remove(i);
                }
                None => {
                    faults += 1;
                    if stack.len() == k {
                        stack.pop();
                    }
                }
            }
            stack.insert(0, p);
        }
        faults
    }
}
