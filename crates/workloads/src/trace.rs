//! Workload trace I/O: JSON (`{"sequences": [[…], …]}`) and a compact
//! line-oriented text format (`core_index: page page page …`), for sharing
//! instances between runs and external tools.

use mcp_core::{PageId, Workload};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Serialize a workload as pretty JSON: `{"sequences": [[1, 2], [9]]}`
/// with one core sequence per line.
pub fn to_json(workload: &Workload) -> String {
    let seqs = workload.sequences();
    let mut out = String::from("{\n  \"sequences\": [\n");
    for (i, seq) in seqs.iter().enumerate() {
        out.push_str("    [");
        for (j, p) in seq.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", p.0);
        }
        out.push(']');
        if i + 1 < seqs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}");
    out
}

/// Errors from the JSON workload parser.
#[derive(Debug)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn fail<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            pos: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            self.fail(format!("expected {:?}", b as char))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.fail(format!("expected {lit}"))
        }
    }

    fn parse_u32(&mut self) -> Result<u32, JsonError> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.fail("expected a page number");
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map_or_else(|| self.fail("page number out of range"), Ok)
    }

    fn parse_page_array(&mut self) -> Result<Vec<PageId>, JsonError> {
        self.expect(b'[')?;
        let mut pages = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(pages);
        }
        loop {
            self.skip_ws();
            pages.push(PageId(self.parse_u32()?));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(pages);
        }
    }
}

/// Parse a workload from JSON of the shape `{"sequences": [[…], …]}`.
pub fn from_json(json: &str) -> Result<Workload, JsonError> {
    let mut p = JsonParser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    p.skip_ws();
    p.expect_literal("\"sequences\"")?;
    p.skip_ws();
    p.expect(b':')?;
    p.skip_ws();
    p.expect(b'[')?;
    let mut sequences = Vec::new();
    p.skip_ws();
    if !p.eat(b']') {
        loop {
            p.skip_ws();
            sequences.push(p.parse_page_array()?);
            p.skip_ws();
            if p.eat(b',') {
                continue;
            }
            p.expect(b']')?;
            break;
        }
    }
    p.skip_ws();
    p.expect(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.fail("trailing characters after workload");
    }
    Workload::new(sequences).map_err(|e| JsonError {
        pos: 0,
        message: e.to_string(),
    })
}

/// Save a workload to a JSON file.
pub fn save_json(workload: &Workload, path: &Path) -> io::Result<()> {
    std::fs::write(path, to_json(workload))
}

/// Load a workload from a JSON file.
pub fn load_json(path: &Path) -> io::Result<Workload> {
    let data = std::fs::read_to_string(path)?;
    from_json(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Write the compact text format: one line per core,
/// `<core>: <page> <page> …`.
pub fn write_text<W: Write>(workload: &Workload, mut out: W) -> io::Result<()> {
    for (core, seq) in workload.sequences().iter().enumerate() {
        write!(out, "{core}:")?;
        for p in seq {
            write!(out, " {}", p.0)?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Errors from the text parser.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum TextError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (bad core index or page number).
    Parse { line: usize, message: String },
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextError::Io(e) => write!(f, "io error: {e}"),
            TextError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<io::Error> for TextError {
    fn from(e: io::Error) -> Self {
        TextError::Io(e)
    }
}

/// Parse the compact text format. Core lines may appear in any order;
/// missing cores get empty sequences.
pub fn read_text<R: BufRead>(input: R) -> Result<Workload, TextError> {
    let mut sequences: Vec<(usize, Vec<PageId>)> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, rest) = line.split_once(':').ok_or_else(|| TextError::Parse {
            line: lineno + 1,
            message: "expected `<core>: <pages…>`".into(),
        })?;
        let core: usize = head.trim().parse().map_err(|_| TextError::Parse {
            line: lineno + 1,
            message: format!("bad core index {head:?}"),
        })?;
        let pages = rest
            .split_whitespace()
            .map(|tok| {
                tok.parse::<u32>()
                    .map(PageId)
                    .map_err(|_| TextError::Parse {
                        line: lineno + 1,
                        message: format!("bad page number {tok:?}"),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        sequences.push((core, pages));
    }
    let max_core = sequences
        .iter()
        .map(|(c, _)| *c)
        .max()
        .ok_or(TextError::Parse {
            line: 0,
            message: "no core lines found".into(),
        })?;
    let mut table = vec![Vec::new(); max_core + 1];
    for (core, pages) in sequences {
        table[core] = pages;
    }
    Workload::new(table).map_err(|e| TextError::Parse {
        line: 0,
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        Workload::from_u32([vec![1, 2, 3, 1], vec![9, 9], vec![]]).unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let w = sample();
        let json = to_json(&w);
        assert_eq!(from_json(&json).unwrap(), w);
    }

    #[test]
    fn json_file_roundtrip() {
        let w = sample();
        let dir = std::env::temp_dir().join(format!("mcp_trace_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        save_json(&w, &path).unwrap();
        assert_eq!(load_json(&path).unwrap(), w);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn text_roundtrip() {
        let w = sample();
        let mut buf = Vec::new();
        write_text(&w, &mut buf).unwrap();
        let parsed = read_text(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, w);
    }

    #[test]
    fn text_parses_comments_and_order() {
        let text = "# a comment\n1: 5 6\n0: 7\n";
        let w = read_text(std::io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(w.sequence(0), &[PageId(7)]);
        assert_eq!(w.sequence(1), &[PageId(5), PageId(6)]);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text(std::io::Cursor::new(b"nonsense" as &[u8])).is_err());
        assert!(read_text(std::io::Cursor::new(b"0: 1 x 3" as &[u8])).is_err());
        assert!(read_text(std::io::Cursor::new(b"z: 1" as &[u8])).is_err());
        assert!(read_text(std::io::Cursor::new(b"" as &[u8])).is_err());
    }
}
