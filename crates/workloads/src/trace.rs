//! Workload trace I/O: JSON (via serde) and a compact line-oriented text
//! format (`core_index: page page page …`), for sharing instances between
//! runs and external tools.

use mcp_core::{PageId, Workload};
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Serialize a workload as pretty JSON.
pub fn to_json(workload: &Workload) -> String {
    serde_json::to_string_pretty(workload).expect("workload serializes")
}

/// Parse a workload from JSON.
pub fn from_json(json: &str) -> Result<Workload, serde_json::Error> {
    serde_json::from_str(json)
}

/// Save a workload to a JSON file.
pub fn save_json(workload: &Workload, path: &Path) -> io::Result<()> {
    std::fs::write(path, to_json(workload))
}

/// Load a workload from a JSON file.
pub fn load_json(path: &Path) -> io::Result<Workload> {
    let data = std::fs::read_to_string(path)?;
    from_json(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Write the compact text format: one line per core,
/// `<core>: <page> <page> …`.
pub fn write_text<W: Write>(workload: &Workload, mut out: W) -> io::Result<()> {
    for (core, seq) in workload.sequences().iter().enumerate() {
        write!(out, "{core}:")?;
        for p in seq {
            write!(out, " {}", p.0)?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Errors from the text parser.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum TextError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (bad core index or page number).
    Parse { line: usize, message: String },
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextError::Io(e) => write!(f, "io error: {e}"),
            TextError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<io::Error> for TextError {
    fn from(e: io::Error) -> Self {
        TextError::Io(e)
    }
}

/// Parse the compact text format. Core lines may appear in any order;
/// missing cores get empty sequences.
pub fn read_text<R: BufRead>(input: R) -> Result<Workload, TextError> {
    let mut sequences: Vec<(usize, Vec<PageId>)> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, rest) = line.split_once(':').ok_or_else(|| TextError::Parse {
            line: lineno + 1,
            message: "expected `<core>: <pages…>`".into(),
        })?;
        let core: usize = head.trim().parse().map_err(|_| TextError::Parse {
            line: lineno + 1,
            message: format!("bad core index {head:?}"),
        })?;
        let pages = rest
            .split_whitespace()
            .map(|tok| {
                tok.parse::<u32>()
                    .map(PageId)
                    .map_err(|_| TextError::Parse {
                        line: lineno + 1,
                        message: format!("bad page number {tok:?}"),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        sequences.push((core, pages));
    }
    let max_core = sequences
        .iter()
        .map(|(c, _)| *c)
        .max()
        .ok_or(TextError::Parse {
            line: 0,
            message: "no core lines found".into(),
        })?;
    let mut table = vec![Vec::new(); max_core + 1];
    for (core, pages) in sequences {
        table[core] = pages;
    }
    Workload::new(table).map_err(|e| TextError::Parse {
        line: 0,
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        Workload::from_u32([vec![1, 2, 3, 1], vec![9, 9], vec![]]).unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let w = sample();
        let json = to_json(&w);
        assert_eq!(from_json(&json).unwrap(), w);
    }

    #[test]
    fn json_file_roundtrip() {
        let w = sample();
        let dir = std::env::temp_dir().join(format!("mcp_trace_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        save_json(&w, &path).unwrap();
        assert_eq!(load_json(&path).unwrap(), w);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn text_roundtrip() {
        let w = sample();
        let mut buf = Vec::new();
        write_text(&w, &mut buf).unwrap();
        let parsed = read_text(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, w);
    }

    #[test]
    fn text_parses_comments_and_order() {
        let text = "# a comment\n1: 5 6\n0: 7\n";
        let w = read_text(std::io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(w.sequence(0), &[PageId(7)]);
        assert_eq!(w.sequence(1), &[PageId(5), PageId(6)]);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text(std::io::Cursor::new(b"nonsense" as &[u8])).is_err());
        assert!(read_text(std::io::Cursor::new(b"0: 1 x 3" as &[u8])).is_err());
        assert!(read_text(std::io::Cursor::new(b"z: 1" as &[u8])).is_err());
        assert!(read_text(std::io::Cursor::new(b"" as &[u8])).is_err());
    }
}
