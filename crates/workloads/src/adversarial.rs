//! The adversarial request sequences constructed inside the paper's
//! proofs, as parameterized generators. Page numbering keeps all cores
//! disjoint: core `j` draws from `[j·STRIDE, (j+1)·STRIDE)`.

use mcp_core::{PageId, Workload};

/// Page-id stride separating the cores' disjoint universes.
pub const CORE_STRIDE: u32 = 1 << 20;

fn page(core: usize, local: u32) -> PageId {
    PageId(core as u32 * CORE_STRIDE + local)
}

/// Lemma 1 (lower bound): under a fixed static partition `B = {k_j}`,
/// every core except the one with the largest part repeats a single page,
/// while the largest part's core cycles `k_{j*} + 1` distinct pages —
/// thrashing any deterministic online policy in its own part while
/// per-part OPT faults only once per `k_{j*}` requests.
///
/// Every core issues `n_per_core` requests.
pub fn lemma1_lower(partition: &[usize], n_per_core: usize) -> Workload {
    assert!(!partition.is_empty());
    let j_star = partition
        .iter()
        .enumerate()
        .max_by_key(|(_, &k)| k)
        .map(|(j, _)| j)
        .expect("nonempty");
    let cycle = partition[j_star] as u32 + 1;
    let sequences = partition
        .iter()
        .enumerate()
        .map(|(j, _)| {
            (0..n_per_core)
                .map(|i| {
                    if j == j_star {
                        page(j, i as u32 % cycle)
                    } else {
                        page(j, 0)
                    }
                })
                .collect()
        })
        .collect();
    Workload::new(sequences).expect("nonempty")
}

/// Lemma 2: against a *fixed* online static partition `B`, cores in the
/// set `P'` (the largest parts) cycle `k_j + 1` pages (thrashing their
/// parts), other cores cycle exactly `k_j` pages (fitting), and the
/// smallest part of size ≥ 2 (core `j*`) repeats one page — an offline
/// partition reassigns `j*`'s spare cells to `P'` and faults only `O(K)`
/// times, while `sP^B` faults on `Ω(n)` requests.
pub fn lemma2(partition: &[usize], n_per_core: usize) -> Workload {
    let p = partition.len();
    let j_star = partition
        .iter()
        .enumerate()
        .filter(|(_, &k)| k >= 2)
        .min_by_key(|(_, &k)| k)
        .map(|(j, _)| j)
        .expect("some part must have at least 2 cells");
    let k_star = partition[j_star];

    // P = the first min(k*, p) processors in decreasing part order.
    let mut by_size: Vec<usize> = (0..p).collect();
    by_size.sort_by_key(|&j| std::cmp::Reverse(partition[j]));
    let p_set: Vec<usize> = by_size.into_iter().take(k_star.min(p)).collect();
    let p_prime: Vec<usize> = p_set.iter().copied().filter(|&j| j != j_star).collect();

    let sequences = (0..p)
        .map(|j| {
            let cycle: u32 = if j == j_star {
                1
            } else if p_prime.contains(&j) {
                partition[j] as u32 + 1 // thrash
            } else {
                partition[j] as u32 // fits exactly
            };
            (0..n_per_core).map(|i| page(j, i as u32 % cycle)).collect()
        })
        .collect();
    Workload::new(sequences).expect("nonempty")
}

/// Theorem 1.1: the rotating "distinct period" sequence on which a shared
/// LRU cache faults only `K + p` times but *every* static partition —
/// even offline-optimal with per-part OPT — faults `Ω(n)` times.
///
/// Core `j` (0-indexed) issues, in order:
/// `(σ^j_1)^{j·(K/p+1)(τ+x)}`, then `(σ^j_1 … σ^j_{K/p+1})^x`, then
/// `(σ^j_1)^{(K+p−(j+1)(K/p+1))(τ+x)}`. The idle repetitions (one
/// timestep per hit under `S_LRU`) exactly tile the other cores' distinct
/// periods, so at most one core is in its distinct period at any time.
///
/// Requires `K` divisible by `p`.
pub fn thm1_rotating(p: usize, cache_size: usize, tau: u64, x: usize) -> Workload {
    assert!(
        p >= 1 && cache_size.is_multiple_of(p),
        "K must be divisible by p"
    );
    assert!(x >= 1);
    let c = cache_size / p + 1; // K/p + 1 distinct pages per core
    let period = (tau as usize + x) * c; // timesteps one distinct period occupies
    let sequences = (0..p)
        .map(|j| {
            let prefix = j * period;
            let suffix = (cache_size + p - (j + 1) * c) * (tau as usize + x);
            let mut seq = Vec::with_capacity(prefix + c * x + suffix);
            seq.extend(std::iter::repeat_n(page(j, 0), prefix));
            for _ in 0..x {
                seq.extend((0..c as u32).map(|i| page(j, i)));
            }
            seq.extend(std::iter::repeat_n(page(j, 0), suffix));
            seq
        })
        .collect();
    Workload::new(sequences).expect("nonempty")
}

/// Lemma 4: each core cycles `K/p + 1` disjoint pages for `n_per_core`
/// requests. `S_LRU` faults on every request; the offline strategy
/// sacrificing one core (`SacrificeOffline`) faults `O(n/(p(τ+1)))`
/// times, exhibiting the `Ω(p(τ+1))` lower bound on LRU's competitive
/// ratio. The same workload shows `S_FITF` suboptimal once `τ > K/p`.
///
/// Requires `K` divisible by `p` (the paper additionally assumes
/// `K ≥ p²`).
pub fn lemma4_cyclic(p: usize, cache_size: usize, n_per_core: usize) -> Workload {
    assert!(
        p >= 1 && cache_size.is_multiple_of(p),
        "K must be divisible by p"
    );
    let c = cache_size as u32 / p as u32 + 1;
    let sequences = (0..p)
        .map(|j| (0..n_per_core).map(|i| page(j, i as u32 % c)).collect())
        .collect();
    Workload::new(sequences).expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_shape() {
        let w = lemma1_lower(&[2, 4, 1], 8);
        assert_eq!(w.num_cores(), 3);
        // Core 1 has the largest part (4): it cycles 5 distinct pages.
        assert_eq!(w.core_universe(1).len(), 5);
        assert_eq!(w.core_universe(0).len(), 1);
        assert_eq!(w.core_universe(2).len(), 1);
        assert!(w.is_disjoint());
    }

    #[test]
    fn lemma2_shape() {
        // Partition [3, 2, 3]: j* is core 1 (smallest part >= 2, k* = 2);
        // P = 2 largest-part cores = {0, 2}; both thrash with k_j + 1.
        let w = lemma2(&[3, 2, 3], 12);
        assert_eq!(w.core_universe(1).len(), 1);
        assert_eq!(w.core_universe(0).len(), 4);
        assert_eq!(w.core_universe(2).len(), 4);
        assert!(w.is_disjoint());
    }

    #[test]
    fn thm1_rotating_shape_and_lengths() {
        let (p, k, tau, x) = (2usize, 4usize, 1u64, 3usize);
        let w = thm1_rotating(p, k, tau, x);
        let c = k / p + 1; // 3
        let period = (tau as usize + x) * c; // 12
                                             // Core 0: no prefix, distinct 9, suffix (K+p-c)(tau+x) = 3*4 = 12.
        assert_eq!(w.len(0), c * x + (k + p - c) * (tau as usize + x));
        // Core 1: prefix 12, distinct 9, suffix (K+p-2c)(tau+x) = 0.
        assert_eq!(w.len(1), period + c * x);
        assert_eq!(w.core_universe(0).len(), c);
        assert!(w.is_disjoint());
    }

    #[test]
    fn lemma4_shape() {
        let w = lemma4_cyclic(2, 4, 10);
        assert_eq!(w.num_cores(), 2);
        assert_eq!(w.core_universe(0).len(), 3); // K/p + 1
        assert_eq!(w.len(0), 10);
        assert!(w.is_disjoint());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rotating_requires_divisibility() {
        thm1_rotating(3, 4, 1, 2);
    }
}
