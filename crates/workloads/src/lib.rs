//! # mcp-workloads — request-sequence generators
//!
//! * [`adversarial`] — the exact constructions from the paper's proofs
//!   (Lemma 1, Lemma 2, Theorem 1.1, Lemma 4), parameterized by `p`, `K`,
//!   `τ`, and length, used by the experiments that reproduce each bound.
//! * [`synthetic`] — realistic multiprogrammed traffic (uniform, Zipf,
//!   phased working sets, scans, loops) for upper-bound experiments,
//!   examples, and property tests.
//! * [`access_graph`] — random-walk workloads over access graphs (the
//!   Borodin et al. / Fiat–Karlin locality model from the paper's
//!   related work).
//! * [`trace`] — JSON and compact text trace I/O.

#![warn(missing_docs)]

pub mod access_graph;
pub mod adversarial;
pub mod stats;
pub mod synthetic;
pub mod trace;

pub use access_graph::{graph_walks, AccessGraph};
pub use adversarial::{lemma1_lower, lemma2, lemma4_cyclic, thm1_rotating};
pub use stats::{profile, profile_core, reuse_distances, working_set_size, CoreProfile};
pub use synthetic::{
    bursty, drifting_phases, multiprogrammed, phased, random_disjoint, shared_hotset,
    staggered_thrash, uniform, zipf, zipf_shared, CorePattern,
};
pub use trace::{from_json, load_json, read_text, save_json, to_json, write_text, TextError};
