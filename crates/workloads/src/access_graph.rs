//! Access-graph workloads (Borodin et al.; Fiat & Karlin's multi-pointer
//! extension, discussed in the paper's related work): request sequences
//! are walks on a graph whose vertices are pages, modeling structured
//! locality — program loops, trees, grids. Each core walks its own
//! component (disjoint pages), which is exactly Fiat–Karlin's
//! "several applications" reading of the multi-pointer model.

use mcp_core::{PageId, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Page-id stride separating the cores' disjoint universes.
pub const CORE_STRIDE: u32 = 1 << 20;

/// An undirected access graph over pages `0..n` (local ids).
#[derive(Clone, Debug)]
pub struct AccessGraph {
    n: u32,
    adjacency: Vec<Vec<u32>>,
}

impl AccessGraph {
    /// Build from an edge list over `0..n`. Isolated vertices self-loop.
    pub fn new(n: u32, edges: &[(u32, u32)]) -> Self {
        assert!(n >= 1);
        let mut adjacency = vec![Vec::new(); n as usize];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            adjacency[a as usize].push(b);
            adjacency[b as usize].push(a);
        }
        for (v, adj) in adjacency.iter_mut().enumerate() {
            if adj.is_empty() {
                adj.push(v as u32); // self-loop so walks never strand
            }
        }
        AccessGraph { n, adjacency }
    }

    /// A cycle of `n` pages — the loop access pattern.
    pub fn cycle(n: u32) -> Self {
        assert!(n >= 1);
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        AccessGraph::new(n, &edges)
    }

    /// A path of `n` pages — a sequential data structure walked back and
    /// forth.
    pub fn path(n: u32) -> Self {
        assert!(n >= 1);
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        AccessGraph::new(n, &edges)
    }

    /// A complete binary tree with `n` nodes — pointer-chasing descent
    /// patterns.
    pub fn binary_tree(n: u32) -> Self {
        assert!(n >= 1);
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((i, (i - 1) / 2));
        }
        AccessGraph::new(n, &edges)
    }

    /// A `rows × cols` grid — stencil/array traversal locality.
    pub fn grid(rows: u32, cols: u32) -> Self {
        assert!(rows >= 1 && cols >= 1);
        let n = rows * cols;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols));
                }
            }
        }
        AccessGraph::new(n, &edges)
    }

    /// Number of vertices (pages).
    pub fn len(&self) -> u32 {
        self.n
    }

    /// `true` iff the graph has no vertices (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// A random walk of `len` requests starting at vertex 0. With
    /// probability `stay`, the walk re-requests the current page
    /// (temporal locality); otherwise it moves to a uniform neighbour.
    pub fn walk(&self, len: usize, stay: f64, rng: &mut StdRng) -> Vec<u32> {
        let mut out = Vec::with_capacity(len);
        let mut at = 0u32;
        for _ in 0..len {
            out.push(at);
            if !rng.gen_bool(stay.clamp(0.0, 1.0)) {
                let adj = &self.adjacency[at as usize];
                at = adj[rng.gen_range(0..adj.len())];
            }
        }
        out
    }
}

/// Build a multicore workload where core `j` random-walks its own copy of
/// `graphs[j]` (disjoint page ranges), `n_per_core` requests each.
pub fn graph_walks(graphs: &[AccessGraph], n_per_core: usize, stay: f64, seed: u64) -> Workload {
    assert!(!graphs.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let sequences = graphs
        .iter()
        .enumerate()
        .map(|(core, g)| {
            g.walk(n_per_core, stay, &mut rng)
                .into_iter()
                .map(|v| PageId(core as u32 * CORE_STRIDE + v))
                .collect()
        })
        .collect();
    Workload::new(sequences).expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_shapes() {
        assert_eq!(AccessGraph::cycle(5).len(), 5);
        assert_eq!(AccessGraph::path(4).len(), 4);
        assert_eq!(AccessGraph::binary_tree(7).len(), 7);
        assert_eq!(AccessGraph::grid(3, 4).len(), 12);
        // Cycle: every vertex has degree 2 (n >= 3).
        let c = AccessGraph::cycle(6);
        assert!(c.adjacency.iter().all(|a| a.len() == 2));
        // Tree: root has 2 children, leaves have 1 edge.
        let t = AccessGraph::binary_tree(7);
        assert_eq!(t.adjacency[0].len(), 2);
        assert_eq!(t.adjacency[6].len(), 1);
    }

    #[test]
    fn walks_respect_adjacency() {
        let g = AccessGraph::cycle(8);
        let mut rng = StdRng::seed_from_u64(3);
        let walk = g.walk(200, 0.2, &mut rng);
        assert_eq!(walk.len(), 200);
        for w in walk.windows(2) {
            let (a, b) = (w[0], w[1]);
            let diff = (a as i64 - b as i64).rem_euclid(8);
            assert!(
                diff == 0 || diff == 1 || diff == 7,
                "non-edge step {a}->{b}"
            );
        }
    }

    #[test]
    fn stay_probability_one_never_moves() {
        let g = AccessGraph::grid(3, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let walk = g.walk(50, 1.0, &mut rng);
        assert!(walk.iter().all(|&v| v == 0));
    }

    #[test]
    fn single_vertex_graph_self_loops() {
        let g = AccessGraph::new(1, &[]);
        let mut rng = StdRng::seed_from_u64(0);
        let walk = g.walk(10, 0.0, &mut rng);
        assert!(walk.iter().all(|&v| v == 0));
    }

    #[test]
    fn multicore_walks_are_disjoint_and_deterministic() {
        let graphs = vec![AccessGraph::cycle(6), AccessGraph::binary_tree(7)];
        let a = graph_walks(&graphs, 100, 0.3, 9);
        let b = graph_walks(&graphs, 100, 0.3, 9);
        assert_eq!(a, b);
        assert!(a.is_disjoint());
        assert_eq!(a.num_cores(), 2);
        assert!(a.core_universe(0).len() <= 6);
        assert!(a.core_universe(1).len() <= 7);
    }

    #[test]
    fn graph_locality_beats_uniform_for_lru() {
        // A random walk on a path has far more locality than uniform
        // traffic over the same universe: LRU should fault much less.
        use mcp_core::{simulate, SimConfig};
        use mcp_policies::shared_lru;
        let graphs = vec![AccessGraph::path(32)];
        let walky = graph_walks(&graphs, 2_000, 0.3, 5);
        let uniform = crate::synthetic::uniform(1, 2_000, 32, 5);
        let cfg = SimConfig::new(8, 0);
        let f_walk = simulate(&walky, cfg, shared_lru()).unwrap().total_faults();
        let f_uni = simulate(&uniform, cfg, shared_lru())
            .unwrap()
            .total_faults();
        assert!(
            f_walk * 2 < f_uni,
            "walk locality should halve faults: walk {f_walk} vs uniform {f_uni}"
        );
    }
}
