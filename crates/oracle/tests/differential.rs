//! Property tests of the differential layer itself: on arbitrary small
//! workloads — disjoint and overlapping — the optimized engine and the
//! naive reference engine must agree for every strategy family, and the
//! exhaustive offline oracles must agree with the dynamic programs.

use mcp_core::{simulate, PageId, SimConfig, Workload};
use mcp_offline::{ftf_min_faults, pif_decide, sched_min, Objective, PifOptions};
use mcp_oracle::{build_family, instance::family_applicable, Instance, FAMILIES};
use mcp_oracle::{
    oracle_min_faults, oracle_pif_feasible, oracle_sched_min_faults, reference_simulate,
};
use mcp_policies::shared_lru;
use proptest::prelude::*;

/// Small disjoint workloads: per-core pages live in per-core namespaces.
fn small_disjoint() -> impl Strategy<Value = Workload> {
    prop::collection::vec(prop::collection::vec(0u32..5, 0..10), 1..=3).prop_map(|seqs| {
        let shifted: Vec<Vec<PageId>> = seqs
            .into_iter()
            .enumerate()
            .map(|(core, s)| {
                s.into_iter()
                    .map(|v| PageId(core as u32 * 100 + v))
                    .collect()
            })
            .collect();
        Workload::new(shifted).unwrap()
    })
}

/// Small overlapping workloads: every core draws from one tiny universe,
/// so shared hits and shared-fetch misses are common.
fn small_overlapping() -> impl Strategy<Value = Workload> {
    prop::collection::vec(prop::collection::vec(0u32..4, 1..10), 2..=3)
        .prop_map(|seqs| Workload::from_u32(seqs).unwrap())
}

/// Very small disjoint workloads, sized for the exhaustive oracles.
fn tiny_disjoint() -> impl Strategy<Value = Workload> {
    prop::collection::vec(prop::collection::vec(0u32..3, 0..4), 1..=2).prop_map(|seqs| {
        let shifted: Vec<Vec<PageId>> = seqs
            .into_iter()
            .enumerate()
            .map(|(core, s)| {
                s.into_iter()
                    .map(|v| PageId(core as u32 * 100 + v))
                    .collect()
            })
            .collect();
        Workload::new(shifted).unwrap()
    })
}

fn assert_engines_agree(w: &Workload, k: usize, tau: u64, seed: u64) {
    let cfg = SimConfig::new(k, tau);
    let instance = Instance::new(w.clone(), cfg);
    for family in FAMILIES {
        if !family_applicable(family, &instance) {
            continue;
        }
        let fast = simulate(w, cfg, build_family(family, &instance, seed).unwrap());
        let slow = reference_simulate(w, cfg, build_family(family, &instance, seed).unwrap());
        assert_eq!(fast, slow, "family {family} diverged on{instance:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engines_agree_on_disjoint_workloads(
        w in small_disjoint(),
        extra in 0usize..4,
        tau in 0u64..4,
        seed in 0u64..u64::MAX,
    ) {
        assert_engines_agree(&w, w.num_cores() + extra, tau, seed);
    }

    #[test]
    fn engines_agree_on_overlapping_workloads(
        w in small_overlapping(),
        extra in 0usize..3,
        tau in 0u64..4,
        seed in 0u64..u64::MAX,
    ) {
        assert_engines_agree(&w, w.num_cores() + extra, tau, seed);
    }

    #[test]
    fn exhaustive_ftf_oracle_matches_dp(
        w in tiny_disjoint(),
        extra in 0usize..3,
        tau in 0u64..3,
    ) {
        if w.total_len() == 0 {
            return;
        }
        let cfg = SimConfig::new(w.num_cores() + extra, tau);
        if let Some(brute) = oracle_min_faults(&w, cfg, 3_000_000) {
            prop_assert_eq!(ftf_min_faults(&w, cfg).unwrap(), brute);
        }
    }

    #[test]
    fn exhaustive_pif_oracle_matches_dp(
        w in tiny_disjoint(),
        extra in 0usize..2,
        tau in 0u64..3,
        slack in 0u64..2,
    ) {
        if w.total_len() == 0 || w.total_len() > 6 {
            return;
        }
        let cfg = SimConfig::new(w.num_cores() + extra, tau);
        let lru = simulate(&w, cfg, shared_lru()).unwrap();
        let checkpoint = (lru.makespan / 2).max(1);
        // Around what S_LRU achieves: slack 0 may be infeasible, slack 1
        // always feasible — both directions must agree with the DP.
        let bounds: Vec<u64> = lru
            .fault_vector_at(checkpoint)
            .into_iter()
            .map(|b| (b + slack).saturating_sub(1))
            .collect();
        if let Some(brute) = oracle_pif_feasible(&w, cfg, checkpoint, &bounds, 3_000_000) {
            let dp = pif_decide(&w, cfg, checkpoint, &bounds, PifOptions::default()).unwrap();
            prop_assert_eq!(dp, brute, "checkpoint {} bounds {:?}", checkpoint, bounds);
        }
    }

    #[test]
    fn exhaustive_sched_oracle_matches_search(
        w in tiny_disjoint(),
        extra in 0usize..2,
        tau in 0u64..2,
    ) {
        if w.total_len() == 0 || w.total_len() > 5 {
            return;
        }
        let cfg = SimConfig::new(w.num_cores() + extra, tau);
        let horizon = (w.total_len() as u64 + 4) * (cfg.tau + 1) + 4;
        if let Some(brute) = oracle_sched_min_faults(&w, cfg, horizon, 3_000_000) {
            if let Ok(dp) = sched_min(&w, cfg, Objective::Faults, horizon, None, 3_000_000) {
                prop_assert_eq!(dp, brute);
            }
        }
    }
}
