//! The seeded differential fuzz harness: random instances from
//! `mcp-workloads`, three engines compared over every strategy family —
//! the event engine ([`mcp_core::Simulator`]), the scan-based tick engine
//! ([`mcp_core::TickSimulator`], with full `StepReport`-trace equality
//! between those two), and the naive tick-by-tick reference — plus
//! metamorphic invariants from the paper's lemmas and exhaustive-oracle
//! cross-checks of the offline dynamic programs — all on
//! `mcp_exec::par_try_map`, so a diverging instance panics inside the
//! pool's containment while the rest of the batch finishes.
//!
//! Everything is derived from one master seed with
//! [`mcp_exec::derive_seed`], so a run is reproducible bit-for-bit at any
//! `--jobs` level and any single instance can be re-run in isolation.

use crate::exhaustive::{
    oracle_min_faults, oracle_min_faults_with_capacity, oracle_pif_feasible,
    oracle_sched_min_faults,
};
use crate::instance::{build_family, family_applicable, Fixture, Instance, FAMILIES};
use crate::reference::reference_simulate_with_capacity;
use mcp_core::{
    simulate, simulate_with_capacity, CapacitySchedule, SimConfig, SimError, SimResult, Simulator,
    StepReport, TickSimulator, Time, Workload,
};
use mcp_exec::{derive_seed, Pool};
use mcp_offline::{
    ftf_min_faults, lru_faults, pif_decide, sched_min, DpError, Objective, PifOptions,
};
use mcp_policies::{shared_lru, static_partition_lru, LruMimicPartition, Partition};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

/// Node cap for the exhaustive offline oracles; a cross-check whose search
/// outgrows this is silently skipped (the instance was too large, not
/// wrong).
const ORACLE_NODE_CAP: usize = 2_000_000;

/// Instance-shape profile for the generator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FuzzProfile {
    /// Round-robin over every workload shape, τ mixed across dense
    /// (0–3), mid (4–16), and large (64–256) tiers.
    #[default]
    Mixed,
    /// Sparse/bursty shapes only, τ always from the large tier — pins the
    /// event engine's idle-skip path, where most timesteps serve nothing.
    LargeTau,
    /// The [`Mixed`](FuzzProfile::Mixed) shape mix, additionally diffing
    /// the `mcp-batch` engine (dense SoA path for its six native
    /// families, per-run fallback otherwise) against the other three.
    Batch,
    /// The [`Mixed`](FuzzProfile::Mixed) shape mix with a seeded dynamic
    /// capacity schedule `K(t)` attached to every instance — drops,
    /// spikes, dips and staircases with change times scaled to the
    /// workload's horizon — pinning the shrink-eviction paths of all
    /// three engines against each other.
    Capacity,
}

impl FuzzProfile {
    /// Parse a CLI spelling (`mixed` | `large-tau` | `batch` | `capacity`).
    pub fn parse(s: &str) -> Option<FuzzProfile> {
        match s {
            "mixed" => Some(FuzzProfile::Mixed),
            "large-tau" => Some(FuzzProfile::LargeTau),
            "batch" => Some(FuzzProfile::Batch),
            "capacity" => Some(FuzzProfile::Capacity),
            _ => None,
        }
    }
}

/// Configuration of one fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Number of random instances to generate.
    pub instances: usize,
    /// Master seed; every instance seed derives from it.
    pub seed: u64,
    /// Where divergence fixtures are written.
    pub corpus_dir: PathBuf,
    /// Strategy families to compare (defaults to [`FAMILIES`]).
    pub families: Vec<String>,
    /// Instance-shape profile (defaults to [`FuzzProfile::Mixed`]).
    pub profile: FuzzProfile,
    /// Run under the chaos retry policy: each instance gets
    /// [`FUZZ_CHAOS_ATTEMPTS`] tries, so faults injected by an armed
    /// [`mcp_chaos::FaultPlan`] (bounded `max_consecutive`) always clear,
    /// while real divergences fail every attempt and surface as
    /// quarantined divergences. With no plan armed this is byte-identical
    /// to the plain path.
    pub chaos: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            instances: 64,
            seed: 0,
            corpus_dir: PathBuf::from("tests/corpus"),
            families: FAMILIES.iter().map(|s| s.to_string()).collect(),
            profile: FuzzProfile::default(),
            chaos: false,
        }
    }
}

/// Per-instance attempt budget under `--chaos`: strictly above the
/// default fault plan's `max_consecutive`, so injected faults are always
/// retried past and only deterministic failures are quarantined.
pub const FUZZ_CHAOS_ATTEMPTS: u32 = 4;

/// One contained divergence (or crash) from a fuzz run.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the diverging instance.
    pub index: usize,
    /// The panic message: names the family and the fixture file, and
    /// carries the shrunk instance inline.
    pub message: String,
}

/// Aggregated outcome of [`run_fuzz`].
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Instances that ran to completion without diverging.
    pub passed: usize,
    /// Engine comparisons performed (instances × families).
    pub comparisons: u64,
    /// Metamorphic invariants checked.
    pub metamorphic_checks: u64,
    /// Exhaustive-oracle cross-checks of the offline DPs performed
    /// (skipped checks — node cap tripped — are not counted).
    pub dp_checks: u64,
    /// Contained divergences, in instance order.
    pub divergences: Vec<Divergence>,
}

impl FuzzReport {
    /// `true` iff every instance agreed everywhere.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Per-instance counters, merged into the [`FuzzReport`].
#[derive(Clone, Copy, Debug, Default)]
struct InstanceStats {
    comparisons: u64,
    metamorphic: u64,
    dp_checks: u64,
}

/// Run the differential fuzz harness. Instances are generated and checked
/// in parallel on the global pool; a divergence panics inside containment
/// (after shrinking and writing a fixture), and the report collects every
/// contained panic in deterministic instance order.
pub fn run_fuzz(options: &FuzzOptions) -> FuzzReport {
    let indices: Vec<usize> = (0..options.instances).collect();
    // Silence the default panic hook while the batch runs: divergences are
    // *expected* panics (that's the containment design), and the hook's
    // thread-id-stamped stderr chatter would differ across --jobs levels.
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let results: Vec<Result<InstanceStats, Divergence>> = if options.chaos {
        Pool::global()
            .par_try_map_retry("fuzz.instance", FUZZ_CHAOS_ATTEMPTS, &indices, |_, &i| {
                fuzz_one(i, options)
            })
            .into_iter()
            .map(|slot| {
                slot.map_err(|q| Divergence {
                    index: q.index,
                    message: q.to_string(),
                })
            })
            .collect()
    } else {
        Pool::global()
            .par_try_map(&indices, |_, &i| fuzz_one(i, options))
            .into_iter()
            .map(|slot| {
                slot.map_err(|p| Divergence {
                    index: p.index,
                    message: p.message,
                })
            })
            .collect()
    };
    panic::set_hook(hook);

    let mut report = FuzzReport::default();
    for outcome in results {
        match outcome {
            Ok(stats) => {
                report.passed += 1;
                report.comparisons += stats.comparisons;
                report.metamorphic_checks += stats.metamorphic;
                report.dp_checks += stats.dp_checks;
            }
            Err(divergence) => report.divergences.push(divergence),
        }
    }
    report.divergences.sort_by_key(|d| d.index);
    report
}

/// Generate instance `i` and run every check against it. Panics (with a
/// deterministic message naming the family and the written fixture) on any
/// divergence.
fn fuzz_one(i: usize, options: &FuzzOptions) -> InstanceStats {
    let seed = derive_seed(options.seed, i as u64);
    let instance = generate(i, seed, options.profile);
    let mut stats = InstanceStats::default();

    for (f, family) in options.families.iter().enumerate() {
        let strategy_seed = derive_seed(seed, f as u64);
        if build_family(family, &instance, strategy_seed).is_none() {
            panic!("unknown strategy family {family:?}");
        }
        if !family_applicable(family, &instance) {
            continue;
        }
        stats.comparisons += 1;
        if options.profile == FuzzProfile::Batch {
            if let Some(detail) = batch_diverges(family, &instance, strategy_seed) {
                let fixture = Fixture {
                    instance: instance.clone(),
                    family: family.clone(),
                    expect_faults: None,
                    note: Some(format!(
                        "batch-engine divergence, fuzz seed {} instance {i}",
                        options.seed
                    )),
                };
                let path = options
                    .corpus_dir
                    .join(format!("div-batch-{family}-i{i}.trace"));
                let saved = match fixture.save(&path) {
                    Ok(()) => path.display().to_string(),
                    Err(e) => format!("<unsaved: {e}>"),
                };
                panic!("batch divergence: family={family} instance={i} fixture={saved}\n{detail}");
            }
        }
        if let Some(detail) = diverges(family, &instance, strategy_seed) {
            let shrunk = shrink(family, &instance, strategy_seed);
            let fixture = Fixture {
                instance: shrunk.clone(),
                family: family.clone(),
                expect_faults: None,
                note: Some(format!(
                    "shrunk divergence, fuzz seed {} instance {i}",
                    options.seed
                )),
            };
            let path = options.corpus_dir.join(format!("div-{family}-i{i}.trace"));
            let saved = match fixture.save(&path) {
                Ok(()) => path.display().to_string(),
                Err(e) => format!("<unsaved: {e}>"),
            };
            panic!(
                "divergence: family={family} instance={i} fixture={saved}\n\
                 {detail}\nshrunk instance:{shrunk:?}"
            );
        }
    }

    stats.metamorphic += metamorphic(&instance);
    stats.dp_checks += dp_cross_check(i, options.seed);
    stats
}

/// Deterministic instance generator: six workload shapes round-robin,
/// with cache size and delay drawn from the instance seed. Shape 1 is
/// non-disjoint (a shared hot set), so shared-fetch misses are exercised;
/// shapes 4–5 (staggered thrash, bursty) plus the tiered τ distribution
/// cover the sparse large-τ regime where the event engine's idle-skipping
/// actually fires — under the old flat `τ ∈ 0..4` draw most instances
/// never skipped a timestep at all.
fn generate(i: usize, seed: u64, profile: FuzzProfile) -> Instance {
    let (shape, tau) = match profile {
        FuzzProfile::Mixed | FuzzProfile::Batch | FuzzProfile::Capacity => {
            // τ tiers: half dense small-τ, a third mid, a sixth large.
            let tau = match (seed >> 16) % 6 {
                0..=2 => (seed >> 8) % 4,
                3 | 4 => 4 + (seed >> 8) % 13,
                _ => 64 + (seed >> 8) % 193,
            };
            (i % 6, tau)
        }
        FuzzProfile::LargeTau => ([1, 4, 5][i % 3], 64 + (seed >> 8) % 193),
    };
    let workload = match shape {
        0 => mcp_workloads::random_disjoint(seed, 3, 24, 8),
        1 => mcp_workloads::shared_hotset(2 + (i / 4) % 2, 16, 5, 3, 0.4, seed),
        2 => mcp_workloads::zipf(2, 20, 12, 0.8, seed),
        3 => mcp_workloads::phased(2, 20, 6, 5, seed),
        4 => mcp_workloads::staggered_thrash(2 + (seed % 3) as usize, 18, 6, 4, seed),
        _ => mcp_workloads::bursty(2, 24, 3, 5, seed),
    };
    let p = workload.num_cores();
    let cfg = SimConfig::new(p + (seed % 5) as usize, tau);
    if profile == FuzzProfile::Capacity {
        let horizon = (0..p).map(|c| workload.len(c) as u64).max().unwrap_or(1) * (tau + 1);
        let schedule = capacity_schedule(derive_seed(seed, 0xCA9), p, cfg.cache_size, horizon);
        return Instance::with_capacity(workload, cfg, schedule);
    }
    Instance::new(workload, cfg)
}

/// Seeded `K(t)` generator: drops, dip-and-recovers, spikes and
/// staircases, with change times drawn inside the workload's rough
/// makespan so the schedule actually intersects live requests. Always
/// valid by construction: initial capacity `k`, every level at least `p`.
fn capacity_schedule(seed: u64, p: usize, k: usize, horizon: Time) -> CapacitySchedule {
    let span = horizon.max(6);
    let t1 = 2 + (seed >> 24) % (span / 2).max(1);
    let t2 = t1 + 1 + (seed >> 34) % (span / 2).max(1);
    let spike = k + 1 + (seed >> 44) as usize % 4;
    let low = if k > p {
        p + (seed >> 50) as usize % (k - p)
    } else {
        k
    };
    let steps = match (seed >> 16) % 4 {
        // Drop and stay low.
        0 if low < k => vec![(t1, low)],
        // Dip and recover.
        1 if low < k => vec![(t1, low), (t2, k)],
        // Spike and return (exercises the max_k allocation headroom).
        2 => vec![(t1, spike), (t2, k)],
        // Staircase down, then jump above the initial capacity.
        _ if low < k => {
            let mid = (low + k).div_ceil(2);
            vec![(t1, mid), (t2, low), (t2 + 2, spike)]
        }
        // K == p leaves no room to shrink: spike instead.
        _ => vec![(t1, spike)],
    };
    CapacitySchedule::new(k, steps).expect("generated schedule is valid by construction")
}

/// Outcome of one engine run: either a result or a model error. Engine
/// panics escape (they are bugs the pool should contain and report).
type Run = Result<SimResult, SimError>;
/// A traced run: the aggregate result plus the full step trace.
type Traced = Result<(SimResult, Vec<StepReport>), SimError>;

fn run_three(family: &str, instance: &Instance, seed: u64) -> (Traced, Traced, Run) {
    let strategy = || build_family(family, instance, seed).expect("family known");
    // Always through the capacity-aware constructors: `Fixed(K)` is
    // bit-identical to the plain paths by construction, and capacity
    // instances exercise the shrink machinery of all three engines.
    let cap = || instance.capacity.clone();
    let event = Simulator::with_capacity(&instance.workload, instance.cfg, cap(), strategy())
        .and_then(|s| s.run_with_trace());
    let tick = TickSimulator::with_capacity(&instance.workload, instance.cfg, cap(), strategy())
        .and_then(|s| s.run_with_trace());
    let reference =
        reference_simulate_with_capacity(&instance.workload, instance.cfg, cap(), strategy());
    (event, tick, reference)
}

/// `Some(description)` iff the `mcp-batch` engine disagrees with the
/// event engine on this instance under this family. The batch engine
/// builds strategies through the same registry, so any difference —
/// dense structure-of-arrays path or per-run fallback — is an engine
/// bug, not a construction mismatch. Model errors must agree too
/// (`BatchError::Sim` wrapping the event engine's `SimError`).
fn batch_diverges(family: &str, instance: &Instance, seed: u64) -> Option<String> {
    let cell = mcp_batch::CellSpec {
        workload: 0,
        family: family.to_string(),
        cache_size: instance.cfg.cache_size,
        tau: instance.cfg.tau,
        seed,
        capacity: Some(instance.capacity.clone()),
    };
    let workloads = [instance.workload.clone()];
    let batch = mcp_batch::run_cells(&workloads, &[cell])
        .pop()
        .expect("one cell in, one result out");
    let strategy = build_family(family, instance, seed).expect("family known");
    let event = simulate_with_capacity(
        &instance.workload,
        instance.cfg,
        instance.capacity.clone(),
        strategy,
    );
    let agree = match (&batch, &event) {
        (Ok(b), Ok(e)) => b == e,
        (Err(mcp_batch::BatchError::Sim(b)), Err(e)) => b == e,
        _ => false,
    };
    if agree {
        None
    } else {
        Some(format!("  batch: {batch:?}\n  event: {event:?}"))
    }
}

/// `Some(description)` iff any pair of the three engines disagrees on this
/// instance under this family: the event and tick engines must agree on
/// the aggregate result *and* the full step trace, and both must agree
/// with the reference on the result. A panic *inside* an engine (e.g. the
/// reference engine's shadow cross-check) is also a divergence.
fn diverges(family: &str, instance: &Instance, seed: u64) -> Option<String> {
    match panic::catch_unwind(AssertUnwindSafe(|| run_three(family, instance, seed))) {
        Ok((event, tick, reference)) => {
            let agree = match (&event, &tick, &reference) {
                (Ok((er, et)), Ok((tr, tt)), Ok(rr)) => er == tr && er == rr && et == tt,
                (Err(a), Err(b), Err(c)) => a == b && a == c,
                _ => false,
            };
            if agree {
                None
            } else {
                Some(describe(&event, &tick, &reference))
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".to_string());
            Some(format!("engine panicked: {msg}"))
        }
    }
}

fn describe(event: &Traced, tick: &Traced, reference: &Run) -> String {
    fn result(r: &SimResult) -> String {
        format!(
            "faults={:?} hits={:?} makespan={} fault_times={:?}",
            r.faults, r.hits, r.makespan, r.fault_times
        )
    }
    fn traced(r: &Traced) -> String {
        match r {
            Ok((res, trace)) => format!("{} steps={}", result(res), trace.len()),
            Err(e) => format!("error: {e:?}"),
        }
    }
    let mut out = format!(
        "  event:     {}\n  tick:      {}\n  reference: {}",
        traced(event),
        traced(tick),
        match reference {
            Ok(res) => result(res),
            Err(e) => format!("error: {e:?}"),
        }
    );
    if let (Ok((_, et)), Ok((_, tt))) = (event, tick) {
        if let Some(i) = (0..et.len().max(tt.len())).find(|&i| et.get(i) != tt.get(i)) {
            out.push_str(&format!(
                "\n  first trace mismatch at step {i}:\n    event: {:?}\n    tick:  {:?}",
                et.get(i),
                tt.get(i)
            ));
        }
    }
    out
}

/// Greedy fixpoint shrinker: repeatedly apply the first size-reducing
/// transformation that still diverges, until none does. Every accepted
/// candidate strictly shrinks `total_len + p + K + τ`, so this terminates.
fn shrink(family: &str, instance: &Instance, seed: u64) -> Instance {
    let still_bad = |cand: &Instance| {
        cand.cfg.validate(&cand.workload).is_ok() && diverges(family, cand, seed).is_some()
    };
    let mut current = instance.clone();
    // Generous safety cap; each accepted round shrinks the size metric.
    for _ in 0..512 {
        match candidates(&current).into_iter().find(|c| still_bad(c)) {
            Some(smaller) => current = smaller,
            None => break,
        }
    }
    current
}

/// Rebuild `instance` with a smaller workload/config, carrying its
/// capacity schedule when the schedule stays valid (initial capacity
/// still matches `K`, every level still covers `p`). `None` when the
/// schedule and the new shape are incompatible — the schedule-simplifying
/// candidates below will discharge the schedule first in that case.
fn rebuilt(instance: &Instance, w: Workload, cfg: SimConfig) -> Option<Instance> {
    let c = &instance.capacity;
    if c.is_fixed() {
        return Some(Instance::new(w, cfg));
    }
    (c.initial_k() == cfg.cache_size && c.min_k() >= w.num_cores())
        .then(|| Instance::with_capacity(w, cfg, c.clone()))
}

/// Strictly smaller variants of `instance`, biggest reductions first.
/// "Smaller" means the metric `total_len + p + K + τ + capacity steps`
/// strictly decreases, so the shrink loop terminates.
fn candidates(instance: &Instance) -> Vec<Instance> {
    let w = &instance.workload;
    let cfg = instance.cfg;
    let p = w.num_cores();
    let mut out = Vec::new();

    // Drop a whole core.
    if p > 1 {
        for drop in 0..p {
            let keep: Vec<usize> = (0..p).filter(|&c| c != drop).collect();
            if let Ok(smaller) = w.select_cores(&keep) {
                out.extend(rebuilt(instance, smaller, cfg));
            }
        }
    }
    // Halve one core's sequence (keep either half).
    for core in 0..p {
        let n = w.len(core);
        if n < 2 {
            continue;
        }
        for keep_front in [true, false] {
            let mut seqs: Vec<Vec<_>> = w.sequences().to_vec();
            seqs[core] = if keep_front {
                seqs[core][..n / 2].to_vec()
            } else {
                seqs[core][n - n / 2..].to_vec()
            };
            if let Ok(smaller) = Workload::new(seqs) {
                out.extend(rebuilt(instance, smaller, cfg));
            }
        }
    }
    // Once small, try removing individual requests.
    if w.total_len() <= 12 {
        for core in 0..p {
            for drop in 0..w.len(core) {
                let mut seqs: Vec<Vec<_>> = w.sequences().to_vec();
                seqs[core].remove(drop);
                if let Ok(smaller) = Workload::new(seqs) {
                    out.extend(rebuilt(instance, smaller, cfg));
                }
            }
        }
    }
    // Simplify the capacity schedule: drop one change (biggest first:
    // collapse all the way to fixed), keeping the workload untouched.
    if !instance.capacity.is_fixed() {
        out.push(Instance::new(w.clone(), cfg));
        let changes = instance.capacity.changes();
        for skip in 0..changes.len() {
            let kept: Vec<(Time, usize)> = changes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != skip)
                .map(|(_, &c)| c)
                .collect();
            if let Ok(thinner) = CapacitySchedule::new(cfg.cache_size, kept) {
                if thinner.min_k() >= p && thinner.changes().len() < changes.len() {
                    out.push(Instance::with_capacity(w.clone(), cfg, thinner));
                }
            }
        }
    }
    // Shrink the delay.
    if cfg.tau > 1 {
        out.extend(rebuilt(
            instance,
            w.clone(),
            SimConfig::new(cfg.cache_size, cfg.tau / 2),
        ));
    }
    if cfg.tau > 0 {
        out.extend(rebuilt(
            instance,
            w.clone(),
            SimConfig::new(cfg.cache_size, 0),
        ));
    }
    // Shrink the cache (validate() rejects K < p later). A dynamic
    // schedule pins K, so this only applies once the schedule is gone.
    if cfg.cache_size > 1 && instance.capacity.is_fixed() {
        out.push(Instance::new(
            w.clone(),
            SimConfig::new(cfg.cache_size - 1, cfg.tau),
        ));
    }
    out
}

/// Metamorphic invariants from the paper, checked on the optimized engine
/// alone (so the `MCP_ORACLE_SKEW` hook does not touch them). Panics on
/// violation; returns the number of invariants that applied.
fn metamorphic(instance: &Instance) -> u64 {
    let w = &instance.workload;
    let cfg = instance.cfg;
    let p = w.num_cores();
    let mut checked = 0;
    if !w.is_disjoint() {
        return checked;
    }

    // Lemma 3: on disjoint sequences, shared LRU behaves exactly like the
    // LRU-mimicking dynamic partition.
    let lru = simulate(w, cfg, shared_lru()).expect("valid instance");
    let mimic = simulate(w, cfg, LruMimicPartition::new()).expect("valid instance");
    assert_eq!(
        lru, mimic,
        "metamorphic: dP_LRU != S_LRU on disjoint workload (Lemma 3){instance:?}"
    );
    checked += 1;

    // τ = 0 and a static equal partition collapse to p independent
    // sequential LRUs of the partition sizes.
    let part = Partition::equal(cfg.cache_size, p);
    let sizes = part.sizes().to_vec();
    let zero_tau = SimConfig::new(cfg.cache_size, 0);
    let r = simulate(w, zero_tau, static_partition_lru(part)).expect("valid instance");
    for (core, &size) in sizes.iter().enumerate() {
        assert_eq!(
            r.faults[core],
            lru_faults(w.sequence(core), size),
            "metamorphic: partitioned tau=0 core {core} != sequential LRU{instance:?}"
        );
    }
    checked += 1;

    // Conservative policies behind a static partition are stack
    // algorithms: per-core faults are monotone non-increasing in K
    // (Partition::equal grows every core's share weakly in K).
    let bigger = SimConfig::new(cfg.cache_size + 1, cfg.tau);
    let small = simulate(
        w,
        cfg,
        static_partition_lru(Partition::equal(cfg.cache_size, p)),
    )
    .expect("valid instance");
    let large = simulate(
        w,
        bigger,
        static_partition_lru(Partition::equal(cfg.cache_size + 1, p)),
    )
    .expect("valid instance");
    for core in 0..p {
        assert!(
            large.faults[core] <= small.faults[core],
            "metamorphic: faults increased with K on core {core} \
             ({} -> {}){instance:?}",
            small.faults[core],
            large.faults[core],
        );
    }
    checked += 1;
    checked
}

/// Cross-check the offline dynamic programs against the naive exhaustive
/// oracles on a tiny instance derived from the run seed. Panics with the
/// algorithm's name on any mismatch; returns the number of checks that
/// actually ran (a tripped node cap skips, it does not fail).
fn dp_cross_check(i: usize, master: u64) -> u64 {
    let seed = derive_seed(master, 1_000_000 + i as u64);
    let w = mcp_workloads::random_disjoint(seed, 2, 4, 3);
    let p = w.num_cores();
    let cfg = SimConfig::new(p + (seed % 2) as usize, (seed >> 8) % 2);
    let mut checked = 0;

    // FINAL-TOTAL-FAULTS: Algorithm 1's DP vs. brute force.
    if let Some(brute) = oracle_min_faults(&w, cfg, ORACLE_NODE_CAP) {
        let dp = ftf_min_faults(&w, cfg).expect("tiny instance");
        assert_eq!(
            dp,
            brute,
            "dp-cross-check: ftf_dp disagrees with exhaustive oracle on\n{}",
            Instance::new(w.clone(), cfg)
        );
        checked += 1;
    }

    // PARTIAL-INDIVIDUAL-FAULTS: Algorithm 2's DP vs. brute force, at the
    // bound S_LRU achieves (feasible) and one fault tighter (either way).
    let lru = simulate(&w, cfg, shared_lru()).expect("tiny instance");
    let checkpoint = (lru.makespan / 2).max(1);
    let bounds = lru.fault_vector_at(checkpoint);
    for bounds in pif_bound_variants(&bounds) {
        if let Some(brute) = oracle_pif_feasible(&w, cfg, checkpoint, &bounds, ORACLE_NODE_CAP) {
            let dp = pif_decide(&w, cfg, checkpoint, &bounds, PifOptions::default())
                .expect("tiny instance");
            assert_eq!(
                dp,
                brute,
                "dp-cross-check: pif_dp disagrees with exhaustive oracle at \
                 checkpoint {checkpoint} bounds {bounds:?} on\n{}",
                Instance::new(w.clone(), cfg)
            );
            checked += 1;
        }
    }

    // K(t)-aware exhaustive oracle: its minimum lower-bounds every
    // online strategy run under the same schedule.
    let horizon = (w.total_len() as u64 + 2) * (cfg.tau + 1);
    let schedule = capacity_schedule(derive_seed(seed, 0xD0), p, cfg.cache_size, horizon);
    if let Some(brute) = oracle_min_faults_with_capacity(&w, cfg, &schedule, ORACLE_NODE_CAP) {
        let lru =
            simulate_with_capacity(&w, cfg, schedule.clone(), shared_lru()).expect("tiny instance");
        assert!(
            brute <= lru.total_faults(),
            "dp-cross-check: K(t)-aware oracle {brute} exceeds S_LRU {} under {schedule} on\n{}",
            lru.total_faults(),
            Instance::new(w.clone(), cfg)
        );
        checked += 1;
    }

    // The scheduling-capable model: branch-and-bound vs. brute force.
    if w.total_len() <= 6 {
        let horizon = (w.total_len() as u64 + 4) * (cfg.tau + 1) + 4;
        if let Some(brute) = oracle_sched_min_faults(&w, cfg, horizon, ORACLE_NODE_CAP) {
            match sched_min(&w, cfg, Objective::Faults, horizon, None, ORACLE_NODE_CAP) {
                Ok(dp) => {
                    assert_eq!(
                        dp,
                        brute,
                        "dp-cross-check: sched_min disagrees with exhaustive oracle on\n{}",
                        Instance::new(w.clone(), cfg)
                    );
                    checked += 1;
                }
                Err(DpError::TooLarge { .. }) => {}
                Err(e) => panic!("dp-cross-check: sched_min failed: {e:?}"),
            }
        }
    }
    checked
}

/// The S_LRU-achieved bound vector plus a one-tighter variant (largest
/// nonzero coordinate decremented), when one exists.
fn pif_bound_variants(bounds: &[u64]) -> Vec<Vec<u64>> {
    let mut variants = vec![bounds.to_vec()];
    if let Some(core) = (0..bounds.len()).max_by_key(|&c| bounds[c]) {
        if bounds[core] > 0 {
            let mut tighter = bounds.to_vec();
            tighter[core] -= 1;
            variants.push(tighter);
        }
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(instances: usize, seed: u64) -> FuzzOptions {
        FuzzOptions {
            instances,
            seed,
            corpus_dir: std::env::temp_dir().join("mcp-oracle-fuzz-test"),
            ..FuzzOptions::default()
        }
    }

    #[test]
    fn a_small_batch_is_clean() {
        let report = run_fuzz(&opts(8, 0xfeed));
        assert!(report.clean(), "divergences: {:#?}", report.divergences);
        assert_eq!(report.passed, 8);
        // Every instance compares every applicable family; only the
        // disjoint-only sacrifice construction may sit out.
        assert!(report.comparisons >= 8 * (FAMILIES.len() as u64 - 1));
        assert!(report.metamorphic_checks > 0);
        assert!(report.dp_checks > 0);
    }

    #[test]
    fn large_tau_profile_exercises_the_skip_path() {
        // Every large-τ instance must actually skip: the number of served
        // steps is far below the makespan (the old flat τ ∈ 0..4 draw made
        // most instances step every few ticks, leaving the fast-forward
        // path untested).
        for i in 0..6 {
            let seed = derive_seed(0xA5, i as u64);
            let instance = generate(i, seed, FuzzProfile::LargeTau);
            assert!(
                instance.cfg.tau >= 64,
                "instance {i}: tau {}",
                instance.cfg.tau
            );
            let (res, trace) =
                Simulator::new(&instance.workload, instance.cfg, mcp_policies::shared_lru())
                    .unwrap()
                    .run_with_trace()
                    .unwrap();
            assert!(
                (trace.len() as u64) * 4 < res.makespan,
                "instance {i}: {} steps vs makespan {} — not sparse",
                trace.len(),
                res.makespan
            );
        }
        // And the profile runs clean through the full three-way harness.
        let report = run_fuzz(&FuzzOptions {
            instances: 3,
            seed: 5,
            profile: FuzzProfile::LargeTau,
            corpus_dir: std::env::temp_dir().join("mcp-oracle-fuzz-ltau-test"),
            ..FuzzOptions::default()
        });
        assert!(report.clean(), "divergences: {:#?}", report.divergences);
    }

    #[test]
    fn batch_profile_diffs_the_batch_engine_clean() {
        let report = run_fuzz(&FuzzOptions {
            instances: 8,
            seed: 0xBA7C,
            profile: FuzzProfile::Batch,
            corpus_dir: std::env::temp_dir().join("mcp-oracle-fuzz-batch-test"),
            ..FuzzOptions::default()
        });
        assert!(report.clean(), "divergences: {:#?}", report.divergences);
        assert_eq!(report.passed, 8);
    }

    #[test]
    fn capacity_profile_generates_valid_dynamic_schedules() {
        let mut dynamic = 0;
        for i in 0..24 {
            let seed = derive_seed(0xCAFE, i as u64);
            let instance = generate(i, seed, FuzzProfile::Capacity);
            let c = &instance.capacity;
            assert_eq!(c.initial_k(), instance.cfg.cache_size, "instance {i}");
            assert!(
                c.min_k() >= instance.workload.num_cores(),
                "instance {i}: min K(t) {} < p {}",
                c.min_k(),
                instance.workload.num_cores()
            );
            if !c.is_fixed() {
                dynamic += 1;
            }
        }
        // The generator may occasionally collapse to fixed (no-op steps),
        // but the profile must be overwhelmingly dynamic to earn its name.
        assert!(dynamic >= 20, "only {dynamic}/24 dynamic schedules");
    }

    #[test]
    fn capacity_profile_runs_clean_across_every_family() {
        let report = run_fuzz(&FuzzOptions {
            instances: 8,
            seed: 0xCAB,
            profile: FuzzProfile::Capacity,
            corpus_dir: std::env::temp_dir().join("mcp-oracle-fuzz-capacity-test"),
            ..FuzzOptions::default()
        });
        assert!(report.clean(), "divergences: {:#?}", report.divergences);
        assert_eq!(report.passed, 8);
        assert!(report.comparisons >= 8 * (FAMILIES.len() as u64 - 1));
    }

    #[test]
    fn capacity_candidates_simplify_the_schedule() {
        let inst = Instance::with_capacity(
            Workload::from_u32([vec![1, 2, 3, 1, 2, 3], vec![7, 8, 7, 8]]).unwrap(),
            SimConfig::new(4, 1),
            "4,3@3,2@5,5@8".parse().unwrap(),
        );
        let cands = candidates(&inst);
        // The full-collapse candidate is present…
        assert!(cands.iter().any(|c| c.capacity.is_fixed()));
        // …alongside single-step removals, and every candidate stays valid.
        assert!(cands
            .iter()
            .any(|c| !c.capacity.is_fixed() && c.capacity.changes().len() == 2));
        let size = |i: &Instance| {
            i.workload.total_len()
                + i.workload.num_cores()
                + i.cfg.cache_size
                + i.cfg.tau as usize
                + i.capacity.changes().len()
        };
        for cand in &cands {
            assert!(size(cand) < size(&inst), "did not shrink: {cand:?}");
            assert_eq!(cand.capacity.initial_k(), cand.cfg.cache_size);
            assert!(cand.capacity.min_k() >= cand.workload.num_cores());
        }
    }

    #[test]
    fn chaos_retries_injected_faults_to_a_clean_report() {
        let plain = run_fuzz(&opts(6, 0xC7A0));
        assert!(plain.clean(), "divergences: {:#?}", plain.divergences);
        // Same instances under an armed bounded plan: every injected
        // panic/stall clears within the retry budget, so the report is
        // clean and counts exactly match the unarmed run.
        let plan = mcp_chaos::FaultPlan {
            write_per_mille: 0,
            read_per_mille: 0,
            task_per_mille: 400,
            max_consecutive: 2,
            max_stall_ms: 2,
            ..mcp_chaos::FaultPlan::seeded(0xC7A0)
        };
        let _guard = mcp_chaos::arm_scoped(plan);
        let report = run_fuzz(&FuzzOptions {
            chaos: true,
            ..opts(6, 0xC7A0)
        });
        assert!(report.clean(), "divergences: {:#?}", report.divergences);
        assert_eq!(report.passed, plain.passed);
        assert_eq!(report.comparisons, plain.comparisons);
        assert_eq!(report.dp_checks, plain.dp_checks);
    }

    #[test]
    fn reports_are_seed_deterministic() {
        let a = run_fuzz(&opts(4, 7));
        let b = run_fuzz(&opts(4, 7));
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.comparisons, b.comparisons);
        assert_eq!(a.metamorphic_checks, b.metamorphic_checks);
        assert_eq!(a.dp_checks, b.dp_checks);
    }

    #[test]
    fn shrinker_reaches_a_fixpoint_on_a_forced_divergence() {
        // Pretend "every instance diverges" by shrinking against a family
        // whose comparison we sabotage: instead of poking the env hook
        // (racy across test threads), shrink with a predicate stub by
        // shrinking a *valid* instance against an impossible family name
        // is not possible — so exercise the candidate generator directly.
        let inst = Instance::new(
            Workload::from_u32([vec![1, 2, 3, 1, 2, 3], vec![7, 8, 7, 8]]).unwrap(),
            SimConfig::new(4, 3),
        );
        let cands = candidates(&inst);
        assert!(!cands.is_empty());
        let size = |i: &Instance| {
            i.workload.total_len() + i.workload.num_cores() + i.cfg.cache_size + i.cfg.tau as usize
        };
        for cand in &cands {
            assert!(
                size(cand) < size(&inst),
                "candidate did not shrink: {cand:?}"
            );
        }
    }

    #[test]
    fn pif_bound_variants_tighten_the_largest_coordinate() {
        assert_eq!(pif_bound_variants(&[2, 5]), vec![vec![2, 5], vec![2, 4]]);
        assert_eq!(pif_bound_variants(&[0, 0]), vec![vec![0, 0]]);
    }
}
