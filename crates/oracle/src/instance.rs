//! Fuzz instances: a workload plus its configuration, with the compact
//! human-readable form used everywhere counterexamples surface — proptest
//! shrink output, divergence panics, and the replayable fixture files under
//! `tests/corpus/`.

use mcp_core::{CacheStrategy, CapacitySchedule, SimConfig, Workload};
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// One fuzzable instance: a workload and the cache parameters to run it
/// under. `Display`/`Debug` print the compact `K/p/τ` header plus one row
/// of raw page numbers per core — the same shape the fixture files use, so
/// a shrunk counterexample can be pasted into `tests/corpus/` verbatim.
#[derive(Clone, PartialEq, Eq)]
pub struct Instance {
    /// The per-core request sequences.
    pub workload: Workload,
    /// Cache size and fault delay.
    pub cfg: SimConfig,
    /// The capacity schedule `K(t)`; `fixed(cfg.cache_size)` for plain
    /// constant-capacity instances (the overwhelmingly common case).
    pub capacity: CapacitySchedule,
}

impl Instance {
    /// Bundle a workload with its configuration (constant capacity).
    pub fn new(workload: Workload, cfg: SimConfig) -> Self {
        let capacity = CapacitySchedule::fixed(cfg.cache_size);
        Instance {
            workload,
            cfg,
            capacity,
        }
    }

    /// Bundle a workload with its configuration and a capacity schedule.
    /// `capacity.initial_k()` must equal `cfg.cache_size` (the engines
    /// reject the mismatch at run time otherwise).
    pub fn with_capacity(workload: Workload, cfg: SimConfig, capacity: CapacitySchedule) -> Self {
        Instance {
            workload,
            cfg,
            capacity,
        }
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "# k: {} tau: {} p: {}",
            self.cfg.cache_size,
            self.cfg.tau,
            self.workload.num_cores()
        )?;
        if !self.capacity.is_fixed() {
            write!(f, " capacity: {}", self.capacity)?;
        }
        writeln!(f)?;
        for (core, seq) in self.workload.sequences().iter().enumerate() {
            write!(f, "{core}:")?;
            for page in seq {
                write!(f, " {}", page.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\n{self}")
    }
}

/// The strategy families the differential harness exercises, by the same
/// identifiers `mcp simulate --strategy` accepts. Randomized families
/// (`rand`, `mark-rand`) are seeded per instance, so every comparison is
/// reproducible. Re-exported from the [`mcp_policies::families`] registry,
/// where the constructors live.
pub use mcp_policies::FAMILIES;

/// Build a fresh strategy of family `name` for `instance` (each engine run
/// needs its own instance — strategies are stateful). Returns `None` for
/// unknown names. `seed` drives the randomized families only.
pub fn build_family(name: &str, instance: &Instance, seed: u64) -> Option<Box<dyn CacheStrategy>> {
    mcp_policies::build_family(name, &instance.workload, instance.cfg, seed)
}

/// `true` iff `family` is defined on `instance` at all. The offline
/// sacrifice construction (Lemma 4) asserts disjoint per-core sequences;
/// every other family accepts any workload.
pub fn family_applicable(name: &str, instance: &Instance) -> bool {
    mcp_policies::family_applicable(name, &instance.workload)
}

/// A corpus fixture: an instance plus the strategy family it runs under
/// and (for golden fixtures) the expected total fault count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fixture {
    /// The instance to replay.
    pub instance: Instance,
    /// Strategy family identifier (see [`FAMILIES`]).
    pub family: String,
    /// Pinned total fault count, if the fixture records one. Divergence
    /// fixtures written by the shrinker omit it (at the time of writing,
    /// the two engines disagreed on the value).
    pub expect_faults: Option<u64>,
    /// Free-form provenance note (`# note: …`).
    pub note: Option<String>,
}

impl fmt::Display for Fixture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# mcp-oracle fixture")?;
        writeln!(f, "# family: {}", self.family)?;
        writeln!(f, "# k: {}", self.instance.cfg.cache_size)?;
        writeln!(f, "# tau: {}", self.instance.cfg.tau)?;
        if !self.instance.capacity.is_fixed() {
            writeln!(f, "# capacity: {}", self.instance.capacity)?;
        }
        if let Some(n) = self.expect_faults {
            writeln!(f, "# expect-faults: {n}")?;
        }
        if let Some(note) = &self.note {
            writeln!(f, "# note: {note}")?;
        }
        for (core, seq) in self.instance.workload.sequences().iter().enumerate() {
            write!(f, "{core}:")?;
            for page in seq {
                write!(f, " {}", page.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A malformed fixture file.
#[derive(Debug)]
pub enum FixtureError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Anything structurally wrong, described for the user.
    Parse(String),
}

impl fmt::Display for FixtureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixtureError::Io(e) => write!(f, "{e}"),
            FixtureError::Parse(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for FixtureError {}

impl From<io::Error> for FixtureError {
    fn from(e: io::Error) -> Self {
        FixtureError::Io(e)
    }
}

impl Fixture {
    /// Parse a fixture from its textual form: `# key: value` header
    /// comments followed by the compact `core: page page …` trace body.
    pub fn parse<R: BufRead>(reader: R) -> Result<Fixture, FixtureError> {
        let mut family: Option<String> = None;
        let mut k: Option<usize> = None;
        let mut tau: Option<u64> = None;
        let mut capacity: Option<CapacitySchedule> = None;
        let mut expect_faults: Option<u64> = None;
        let mut note: Option<String> = None;
        let mut body = String::new();
        for line in reader.lines() {
            let line = line?;
            let trimmed = line.trim();
            if let Some(comment) = trimmed.strip_prefix('#') {
                if let Some((key, value)) = comment.split_once(':') {
                    let (key, value) = (key.trim(), value.trim());
                    match key {
                        "family" => family = Some(value.to_string()),
                        "k" => {
                            k = Some(value.parse().map_err(|_| {
                                FixtureError::Parse(format!("bad k value {value:?}"))
                            })?)
                        }
                        "tau" => {
                            tau = Some(value.parse().map_err(|_| {
                                FixtureError::Parse(format!("bad tau value {value:?}"))
                            })?)
                        }
                        "capacity" => {
                            capacity = Some(value.parse().map_err(|e| {
                                FixtureError::Parse(format!("bad capacity value {value:?}: {e}"))
                            })?)
                        }
                        "expect-faults" => {
                            expect_faults = Some(value.parse().map_err(|_| {
                                FixtureError::Parse(format!("bad expect-faults value {value:?}"))
                            })?)
                        }
                        "note" => note = Some(value.to_string()),
                        _ => {} // unknown header keys are ignored, like trace comments
                    }
                }
                continue;
            }
            body.push_str(&line);
            body.push('\n');
        }
        let workload = mcp_workloads::read_text(body.as_bytes())
            .map_err(|e| FixtureError::Parse(format!("bad trace body: {e}")))?;
        let family = family.ok_or_else(|| FixtureError::Parse("missing # family:".into()))?;
        let k = k.ok_or_else(|| FixtureError::Parse("missing # k:".into()))?;
        let tau = tau.ok_or_else(|| FixtureError::Parse("missing # tau:".into()))?;
        let capacity = capacity.unwrap_or_else(|| CapacitySchedule::fixed(k));
        if capacity.initial_k() != k {
            return Err(FixtureError::Parse(format!(
                "capacity schedule starts at {} but k is {k}",
                capacity.initial_k()
            )));
        }
        Ok(Fixture {
            instance: Instance::with_capacity(workload, SimConfig::new(k, tau), capacity),
            family,
            expect_faults,
            note,
        })
    }

    /// Load a fixture file.
    pub fn load(path: &Path) -> Result<Fixture, FixtureError> {
        let file = std::fs::File::open(path)?;
        Fixture::parse(io::BufReader::new(file))
    }

    /// Write the fixture to `path` (creating parent directories).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        write!(file, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_the_fixture_shape() {
        let inst = Instance::new(
            Workload::from_u32([vec![1, 2, 1], vec![7, 8]]).unwrap(),
            SimConfig::new(3, 1),
        );
        let text = inst.to_string();
        assert_eq!(text, "# k: 3 tau: 1 p: 2\n0: 1 2 1\n1: 7 8\n");
        // The body parses back as a trace (the header is a comment).
        let parsed = mcp_workloads::read_text(text.as_bytes()).unwrap();
        assert_eq!(parsed, inst.workload);
    }

    #[test]
    fn every_family_builds_and_runs() {
        let inst = Instance::new(
            Workload::from_u32([vec![1, 2, 1], vec![7, 8, 7]]).unwrap(),
            SimConfig::new(4, 1),
        );
        for family in FAMILIES {
            let strategy = build_family(family, &inst, 42).unwrap();
            let r = mcp_core::simulate(&inst.workload, inst.cfg, strategy).unwrap();
            assert_eq!(r.total_faults() + r.total_hits(), 6, "{family}");
        }
        assert!(build_family("nope", &inst, 0).is_none());
    }

    #[test]
    fn fixture_round_trips() {
        let fixture = Fixture {
            instance: Instance::new(
                Workload::from_u32([vec![1, 2], vec![9]]).unwrap(),
                SimConfig::new(2, 3),
            ),
            family: "clock".into(),
            expect_faults: Some(3),
            note: Some("round-trip test".into()),
        };
        let text = fixture.to_string();
        let parsed = Fixture::parse(text.as_bytes()).unwrap();
        assert_eq!(parsed, fixture);
    }

    #[test]
    fn malformed_fixtures_are_typed_errors() {
        assert!(Fixture::parse("# family: lru\n0: 1\n".as_bytes()).is_err()); // no k/tau
        assert!(Fixture::parse("# family: lru\n# k: x\n".as_bytes()).is_err());
        assert!(Fixture::parse("0: 1 2\n".as_bytes()).is_err()); // no header at all
    }

    #[test]
    fn capacity_fixture_round_trips() {
        let fixture = Fixture {
            instance: Instance::with_capacity(
                Workload::from_u32([vec![1, 2, 1], vec![9, 8, 9]]).unwrap(),
                SimConfig::new(4, 1),
                "4,2@3,4@7".parse().unwrap(),
            ),
            family: "lru".into(),
            expect_faults: Some(6),
            note: Some("capacity round-trip".into()),
        };
        let text = fixture.to_string();
        assert!(text.contains("# capacity: 4,2@3,4@7"), "{text}");
        let parsed = Fixture::parse(text.as_bytes()).unwrap();
        assert_eq!(parsed, fixture);
        // A fixed-capacity fixture never writes the header, and parses to
        // the same instance as one without it.
        let plain = Fixture {
            instance: Instance::new(
                Workload::from_u32([vec![1, 2]]).unwrap(),
                SimConfig::new(2, 0),
            ),
            family: "lru".into(),
            expect_faults: None,
            note: None,
        };
        assert!(!plain.to_string().contains("capacity"));
        assert_eq!(Fixture::parse(plain.to_string().as_bytes()).unwrap(), plain);
    }

    #[test]
    fn capacity_fixture_rejects_initial_mismatch() {
        let text = "# family: lru\n# k: 4\n# tau: 0\n# capacity: 3,2@5\n0: 1 2\n";
        let err = Fixture::parse(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("starts at 3"), "{err}");
    }

    #[test]
    fn malformed_capacity_is_a_typed_error() {
        let text = "# family: lru\n# k: 4\n# tau: 0\n# capacity: 4,@5\n0: 1 2\n";
        assert!(matches!(
            Fixture::parse(text.as_bytes()),
            Err(FixtureError::Parse(_))
        ));
    }
}
