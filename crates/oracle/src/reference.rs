//! The naive reference engine: the paper's Section 3 model transcribed
//! as literally as possible, optimized for obviousness instead of speed.
//!
//! Where `mcp-core`'s engine fast-forwards between events, keeps a free-cell
//! bitset, an in-flight list and a pin dirty-list, this one walks time one
//! tick at a time (`t = 1, 2, 3, …`), re-derives the set of due cores by
//! scanning every core at every tick, and keeps a plain
//! `HashMap<PageId, ShadowSlot>` picture of the cache that it clones and
//! re-checks against the real [`Cache`] after every served step. Every
//! shortcut the optimized engine takes is one this engine deliberately does
//! not, so any bookkeeping bug on the fast path shows up as a divergence in
//! fault counts, fault times or makespan — or as a shadow-model assertion.
//!
//! The model rules being transcribed (Section 3 of the paper, as pinned
//! down in `mcp_core::sim`):
//!
//! 1. Core `j`'s first request issues at `t = 1`.
//! 2. Every core whose next request is due at `t` is served at `t`, in
//!    increasing core order; later cores observe the cache effects of
//!    earlier ones.
//! 3. A hit completes at `t`; the next request of that core issues at
//!    `t + 1`.
//! 4. A miss evicts its victim immediately, reserves the cell for the
//!    fetch (unusable and unevictable until done), completes at `t + τ`,
//!    and the core's next request issues at `t + τ + 1`.
//! 5. A request for a page mid-fetch for *another* core is a fault for the
//!    requester (delay `τ`) but allocates no second cell.
//! 6. All pages requested in a parallel step are pinned before the
//!    strategy's voluntary evictions run (`R(x) ⊆ C'` in Algorithms 1/2).
//! 7. A quiet tick (no request due) is served only when the strategy
//!    declares it via [`CacheStrategy::next_voluntary_time`]; otherwise
//!    nothing can change and the tick is skipped.

use mcp_core::{
    Cache, CacheError, CacheStrategy, CapacitySchedule, CellState, Lookup, ModelError, PageId,
    SimConfig, SimError, SimResult, Time, Workload,
};
use std::collections::HashMap;

/// Naive picture of one occupied cache cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ShadowSlot {
    /// Cell index in the real cache (only used for cross-checking).
    cell: usize,
    /// Core whose request started the fetch.
    owner: usize,
    /// `Some(r)` while the fetch is in flight (resident at `r`), `None`
    /// once the page is resident.
    ready_at: Option<Time>,
}

/// Environment variable enabling deliberate reference-engine skew, the
/// fault-injection hook for testing the fuzz harness's divergence path:
/// when set to anything but `0`/empty, the reference result gains one
/// phantom fault on core 0, so *every* differential comparison diverges.
pub const SKEW_ENV: &str = "MCP_ORACLE_SKEW";

fn skew_enabled() -> bool {
    match std::env::var(SKEW_ENV) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Run `strategy` on `workload` under `cfg` with the naive reference
/// engine and return the same [`SimResult`] surface as
/// [`mcp_core::simulate`]. Intended to disagree with the optimized engine
/// only when one of them is wrong.
///
/// Panics (rather than returning an error) if the naive shadow model ever
/// disagrees with the real [`Cache`] — that indicates a cache bookkeeping
/// bug, and the fuzz harness contains and reports the panic.
pub fn reference_simulate<S: CacheStrategy>(
    workload: &Workload,
    cfg: SimConfig,
    strategy: S,
) -> Result<SimResult, SimError> {
    reference_simulate_with_capacity(
        workload,
        cfg,
        CapacitySchedule::fixed(cfg.cache_size),
        strategy,
    )
}

/// [`reference_simulate`] under a dynamic capacity schedule `K(t)`: an
/// independent naive transcription of the shrink rules (Peserico-style
/// elastic capacity). At each capacity-change tick the limit moves, the
/// strategy is notified, and — while a full rescan of the cache counts
/// more occupied cells than the limit allows — the strategy's shrink
/// victims (or, failing that, the lowest-index evictable cells) are
/// evicted before any request of that tick is served. Requested pages are
/// pinned *before* the shrink, exactly as in the optimized engines.
pub fn reference_simulate_with_capacity<S: CacheStrategy>(
    workload: &Workload,
    cfg: SimConfig,
    capacity: CapacitySchedule,
    mut strategy: S,
) -> Result<SimResult, SimError> {
    cfg.validate(workload)?;
    let p = workload.num_cores();
    if capacity.initial_k() != cfg.cache_size {
        return Err(ModelError::CapacityMismatch {
            config_k: cfg.cache_size,
            initial_k: capacity.initial_k(),
        }
        .into());
    }
    if capacity.min_k() < p {
        return Err(ModelError::CapacityBelowCores {
            min_k: capacity.min_k(),
            cores: p,
        }
        .into());
    }
    strategy.begin(workload, &cfg);

    let mut cache = Cache::new(capacity.max_k(), p);
    cache.set_limit(cfg.cache_size);
    let changes = capacity.changes();
    let mut cap_idx = 0usize;
    let mut shadow: HashMap<PageId, ShadowSlot> = HashMap::new();

    let mut pos = vec![0usize; p];
    let mut ready = vec![1 as Time; p];
    let mut faults = vec![0u64; p];
    let mut hits = vec![0u64; p];
    let mut fault_times = vec![Vec::<Time>::new(); p];
    let mut makespan: Time = 0;

    let mut t: Time = 1;
    while !(0..p).all(|c| pos[c] >= workload.len(c)) {
        // Promote fetches that completed by now — in the shadow first (on a
        // fresh clone, the per-step copy this engine is allowed to afford),
        // then in the real cache.
        let promoted: HashMap<PageId, ShadowSlot> = shadow
            .clone()
            .into_iter()
            .map(|(page, slot)| {
                let done = slot.ready_at.map(|r| r <= t).unwrap_or(false);
                (
                    page,
                    ShadowSlot {
                        ready_at: if done { None } else { slot.ready_at },
                        ..slot
                    },
                )
            })
            .collect();
        shadow = promoted;
        cache.promote_due(t);

        // Who issues a request at this tick? Re-scan every core.
        let due: Vec<usize> = (0..p)
            .filter(|&c| pos[c] < workload.len(c) && ready[c] == t)
            .collect();

        // A quiet tick is served only when the strategy declared it or a
        // capacity change lands on it (a change is observable even with no
        // request due: the shrink evictions happen *at* the change tick).
        let capacity_due = cap_idx < changes.len() && changes[cap_idx].0 <= t;
        if due.is_empty() && strategy.next_voluntary_time() != Some(t) && !capacity_due {
            t += 1;
            continue;
        }

        // Rule 6: pin every page requested this parallel step before the
        // strategy may evict voluntarily.
        for &core in &due {
            cache.pin_page(workload.sequence(core)[pos[core]]);
        }

        // Capacity changes due at this tick: move the limit, notify the
        // strategy, then evict down to the new limit before anything else
        // happens. The occupancy is re-derived from a full cell scan every
        // round — no reliance on the cache's own over-limit accounting.
        while cap_idx < changes.len() && changes[cap_idx].0 <= t {
            let (_, k) = changes[cap_idx];
            cap_idx += 1;
            cache.set_limit(k);
            strategy.on_capacity_change(t, k, &cache);
        }
        loop {
            let occupied = (0..cache.len())
                .filter(|&cell| !matches!(cache.cell(cell), CellState::Empty))
                .count();
            let Some(need) = occupied.checked_sub(cache.limit()).filter(|&n| n > 0) else {
                break;
            };
            let victims = strategy.shrink_victims(need, t, &cache);
            let mut progress = false;
            for cell in victims.into_iter().take(need) {
                if !matches!(cache.cell(cell), CellState::Present(_)) {
                    return Err(SimError::BadShrinkEviction { cell });
                }
                let page = cache.evict(cell)?;
                strategy.on_evict(page, cell);
                shadow.remove(&page);
                progress = true;
            }
            if !progress {
                // Strategy offered nothing: take the lowest-index
                // evictable cell, or give up if every over-limit cell is
                // pinned or in flight (they drain on later ticks).
                let Some((cell, _, _)) = cache.evictable_cells().next() else {
                    break;
                };
                let page = cache.evict(cell)?;
                strategy.on_evict(page, cell);
                shadow.remove(&page);
            }
        }

        for cell in strategy.voluntary_evictions(t, &cache) {
            if !matches!(cache.cell(cell), CellState::Present(_)) {
                return Err(SimError::BadVoluntaryEviction { cell });
            }
            let page = cache.evict(cell)?;
            strategy.on_evict(page, cell);
            shadow.remove(&page);
        }

        // Rule 2: serve due cores in increasing core order.
        for &core in &due {
            let page = workload.sequence(core)[pos[core]];
            match cache.lookup(page) {
                Lookup::Present { .. } => {
                    // Rule 3: a hit completes at t.
                    hits[core] += 1;
                    strategy.on_hit(core, page, t, &cache);
                    ready[core] = t + 1;
                    makespan = makespan.max(t);
                }
                Lookup::Fetching { .. } => {
                    // Rule 5: mid-fetch for another core — fault, no cell.
                    faults[core] += 1;
                    fault_times[core].push(t);
                    strategy.on_shared_fetch_miss(core, page, t, &cache);
                    ready[core] = t + cfg.tau + 1;
                    makespan = makespan.max(t + cfg.tau);
                }
                Lookup::Absent => {
                    // Rule 4: fault — evict a victim now, fetch until t + τ.
                    faults[core] += 1;
                    fault_times[core].push(t);
                    let cell = strategy.choose_cell(core, page, t, &cache);
                    match cache.cell(cell) {
                        CellState::Present(_) => {
                            let victim = cache.evict(cell)?;
                            strategy.on_evict(victim, cell);
                            shadow.remove(&victim);
                        }
                        CellState::Empty => {}
                        CellState::Fetching { .. } => {
                            return Err(SimError::Cache(CacheError::EvictFetching { cell }));
                        }
                    }
                    cache.start_fetch(cell, page, core, t + cfg.tau + 1)?;
                    strategy.on_fault(core, page, t, cell, &cache);
                    shadow.insert(
                        page,
                        ShadowSlot {
                            cell,
                            owner: core,
                            ready_at: Some(t + cfg.tau + 1),
                        },
                    );
                    ready[core] = t + cfg.tau + 1;
                    makespan = makespan.max(t + cfg.tau);
                }
            }
            pos[core] += 1;
        }
        cache.clear_pins();
        cross_check(&cache, &shadow);
        t += 1;
    }

    if skew_enabled() {
        faults[0] += 1;
        fault_times[0].push(makespan + 1);
    }

    Ok(SimResult {
        faults,
        hits,
        makespan,
        fault_times,
        config: cfg,
    })
}

/// Assert that the naive shadow map and the real cache describe the same
/// cache contents, and that the cache's own incremental bookkeeping is
/// internally consistent.
fn cross_check(cache: &Cache, shadow: &HashMap<PageId, ShadowSlot>) {
    if let Err(violation) = cache.debug_validate() {
        panic!("reference engine: cache invariant violated: {violation}");
    }
    let mut occupied = 0usize;
    for cell in 0..cache.len() {
        match cache.cell(cell) {
            CellState::Empty => {}
            CellState::Present(page) => {
                occupied += 1;
                let slot = shadow.get(&page).unwrap_or_else(|| {
                    panic!("reference engine: resident {page} missing from shadow")
                });
                assert_eq!(
                    (slot.cell, slot.ready_at, Some(slot.owner)),
                    (cell, None, cache.owner(cell)),
                    "reference engine: shadow disagrees on resident {page}"
                );
            }
            CellState::Fetching { page, ready_at } => {
                occupied += 1;
                let slot = shadow.get(&page).unwrap_or_else(|| {
                    panic!("reference engine: in-flight {page} missing from shadow")
                });
                assert_eq!(
                    (slot.cell, slot.ready_at, Some(slot.owner)),
                    (cell, Some(ready_at), cache.owner(cell)),
                    "reference engine: shadow disagrees on in-flight {page}"
                );
            }
        }
    }
    assert_eq!(
        shadow.len(),
        occupied,
        "reference engine: shadow has stale entries"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_core::simulate;
    use mcp_policies::{shared_lru, Partition};

    fn w(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn matches_engine_on_the_sim_rs_doc_examples() {
        for (wl, k, tau) in [
            (w(&[&[1, 2]]), 2, 3),
            (w(&[&[1, 1]]), 1, 3),
            (w(&[&[1, 2, 1, 2]]), 2, 0),
            (w(&[&[1, 2, 3]]), 3, 2),
            (w(&[&[1], &[1]]), 2, 4),
            (w(&[&[1], &[2, 1]]), 3, 2),
            (w(&[&[1, 1, 1], &[2, 2, 2]]), 2, 5),
            (w(&[&[], &[]]), 2, 3),
        ] {
            let cfg = SimConfig::new(k, tau);
            let fast = simulate(&wl, cfg, shared_lru()).unwrap();
            let slow = reference_simulate(&wl, cfg, shared_lru()).unwrap();
            assert_eq!(fast, slow, "diverged on {wl:?} K={k} tau={tau}");
        }
    }

    #[test]
    fn matches_engine_on_quiet_timestep_voluntary_evictions() {
        use mcp_policies::{Replay, ReplayDecision};
        use std::collections::BTreeMap;
        // A scripted strategy that evicts at a quiet timestep (t = 4, when
        // core 0 is between requests) exercises rule 7
        // (next_voluntary_time) in both engines: honest service of
        // [1, 2, 1] with K = 3 faults twice, the forced eviction makes the
        // final request of page 1 fault again.
        let wl = w(&[&[1, 2, 1]]);
        let cfg = SimConfig::new(3, 1);
        let volu: BTreeMap<Time, Vec<PageId>> = [(4, vec![PageId(1)])].into_iter().collect();
        let mk = || {
            let d = (0..3)
                .map(|i| ((0usize, i), ReplayDecision::UseEmpty))
                .collect();
            Replay::new(d).with_voluntary(volu.clone())
        };
        let fast = simulate(&wl, cfg, mk()).unwrap();
        let slow = reference_simulate(&wl, cfg, mk()).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.total_faults(), 3);
    }

    #[test]
    fn matches_engine_under_capacity_schedules() {
        use mcp_core::simulate_with_capacity;
        let workloads = [
            w(&[&[1, 2, 3, 1, 2, 4, 1, 3], &[7, 8, 9, 7, 8, 7, 9, 8]]),
            w(&[&[1, 2, 1, 2, 1, 2], &[5, 6, 7, 5, 6, 7]]),
            w(&[&[1, 2, 3, 1, 2], &[1, 3, 4, 1, 3]]), // shared pages
        ];
        for wl in &workloads {
            for tau in [0u64, 2] {
                for spec in ["4,2@3", "4,2@3,4@8", "4,3@2,2@5,4@9", "4,2@100"] {
                    let schedule: mcp_core::CapacitySchedule = spec.parse().unwrap();
                    let cfg = SimConfig::new(4, tau);
                    let fast =
                        simulate_with_capacity(wl, cfg, schedule.clone(), shared_lru()).unwrap();
                    let slow =
                        reference_simulate_with_capacity(wl, cfg, schedule, shared_lru()).unwrap();
                    assert_eq!(fast, slow, "diverged on {spec} tau={tau} {wl:?}");
                }
            }
        }
    }

    #[test]
    fn capacity_validation_matches_engine() {
        use mcp_core::simulate_with_capacity;
        let wl = w(&[&[1, 2], &[7, 8]]);
        let cfg = SimConfig::new(4, 0);
        for schedule in [
            "4,1@3".parse::<CapacitySchedule>().unwrap(), // min below p
            CapacitySchedule::fixed(5),                   // initial mismatch
        ] {
            let fast = simulate_with_capacity(&wl, cfg, schedule.clone(), shared_lru());
            let slow = reference_simulate_with_capacity(&wl, cfg, schedule, shared_lru());
            assert_eq!(fast.as_ref().err(), slow.as_ref().err());
            assert!(fast.is_err());
        }
    }

    #[test]
    fn partition_strategy_agrees_too() {
        let wl = w(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        let cfg = SimConfig::new(3, 2);
        let mk = || mcp_policies::static_partition_lru(Partition::equal(3, 2));
        assert_eq!(
            simulate(&wl, cfg, mk()).unwrap(),
            reference_simulate(&wl, cfg, mk()).unwrap()
        );
    }

    // The MCP_ORACLE_SKEW fault-injection hook is exercised end-to-end by
    // the CLI regression test (spawned process, so the env var cannot race
    // other in-process tests).
}
