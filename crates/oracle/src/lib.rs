//! Differential correctness oracle for the multicore paging simulator.
//!
//! `mcp-core`'s engine is optimized (event skipping, free-cell bitsets,
//! allocation-free hot paths); this crate holds everything that checks it
//! from the outside:
//!
//! - [`reference`]: a deliberately naive reference engine, transcribed
//!   line-by-line from the paper's Section 3 model — tick-by-tick time, a
//!   cloned `HashMap` cache picture, no intrusive structures.
//! - [`exhaustive`]: tiny-scale brute-force offline oracles that re-derive
//!   the answers of `ftf_dp`, `pif_dp` and `sched_search` by trying every
//!   eviction (and voluntary-eviction, and stall) choice.
//! - [`instance`]: fuzz instances, the strategy-family registry, and the
//!   replayable fixture format used by `tests/corpus/`.
//! - [`fuzz`]: the seeded differential harness behind `mcp fuzz` —
//!   random instances, engine-vs-reference over every family, metamorphic
//!   invariants, and DP cross-checks, with automatic shrinking of any
//!   divergence to a minimal fixture.

#![warn(missing_docs)]

pub mod chaos;
pub mod exhaustive;
pub mod fuzz;
pub mod instance;
pub mod reference;

pub use chaos::{run_torture, ChaosOptions, ChaosReport};
pub use exhaustive::{
    oracle_min_faults, oracle_min_faults_with_capacity, oracle_pif_feasible,
    oracle_sched_min_faults,
};
pub use fuzz::{run_fuzz, Divergence, FuzzOptions, FuzzProfile, FuzzReport};
pub use instance::{build_family, family_applicable, Fixture, FixtureError, Instance, FAMILIES};
pub use reference::{reference_simulate, reference_simulate_with_capacity, SKEW_ENV};
