//! The crash-recovery torture harness behind `mcp chaos` (DESIGN §13).
//!
//! For a batch of seeded instances this drives every recovery surface of
//! the checkpoint layer through deterministic abuse and checks one
//! contract everywhere: a damaged or faulted resume path must yield
//! either the bit-identical reference result or a typed error — never a
//! panic and never a silently divergent answer.
//!
//! Per instance (all derived from one master seed, so a run is
//! reproducible bit-for-bit):
//!
//! 1. **Prefix torture** — every strict byte prefix of a real FTF and
//!    PIF checkpoint must fail to parse with a typed
//!    [`CheckpointError`].
//! 2. **Bit-flip torture** — sampled single-bit flips must either fail
//!    typed, or (if the checksum somehow still passes) resume to the
//!    exact reference result.
//! 3. **Resume equality** — resuming the genuine checkpoint at every
//!    requested `--jobs` level must reproduce the reference result.
//! 4. **Crash simulation** — under a [`FaultPlan::write_crash`] plan
//!    (every write attempt fails, forever) a save must return an error
//!    while the previous target file survives byte-identical, with no
//!    temp-file litter.
//! 5. **Faulted chain** — under the bounded fault plan, a full
//!    save → load → resume chain at every `--jobs` level must end in the
//!    reference result, with corrupt loads degrading to a fresh start.

use crate::fuzz::FUZZ_CHAOS_ATTEMPTS;
use mcp_chaos::{arm_scoped, FaultPlan};
use mcp_core::{Budget, SimConfig, Workload};
use mcp_exec::derive_seed;
use mcp_offline::{
    ftf_dp_governed, lru_faults, pif_decide_governed, CheckpointError, FtfCheckpoint, FtfOptions,
    FtfOutcome, PifCheckpoint, PifOptions, PifOutcome,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Configuration of one torture run.
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// Number of seeded instances to torture.
    pub instances: usize,
    /// Master seed; everything (instances, flip positions, per-instance
    /// fault plans) derives from it.
    pub seed: u64,
    /// Sampled single-bit flips per checkpoint.
    pub bit_flips: usize,
    /// The bounded fault plan armed for the faulted-chain stage. Its
    /// `max_consecutive` must stay below the IO layer's retry budget
    /// ([`mcp_chaos::io::MAX_IO_ATTEMPTS`]) for saves to be guaranteed;
    /// [`run_torture`] clamps it there.
    pub plan: FaultPlan,
    /// Worker counts the resume and faulted-chain stages are repeated at.
    pub jobs: Vec<usize>,
    /// Where the crash-simulation files are written.
    pub scratch_dir: PathBuf,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            instances: 8,
            seed: 0,
            bit_flips: 64,
            plan: FaultPlan::seeded(0),
            jobs: vec![1, 2, 4],
            scratch_dir: std::env::temp_dir().join("mcp-chaos"),
        }
    }
}

/// Aggregated outcome of [`run_torture`].
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Instances tortured.
    pub instances: usize,
    /// Strict byte prefixes parsed (all must fail typed).
    pub prefix_parses: u64,
    /// Single-bit flips parsed.
    pub bit_flip_parses: u64,
    /// Genuine-checkpoint resume runs compared against the reference.
    pub resume_checks: u64,
    /// Simulated crashes of the atomic save path.
    pub crash_sims: u64,
    /// Faulted save → load → resume chains completed.
    pub faulted_chains: u64,
    /// Every contract violation, in deterministic order. Empty ⇔ clean.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// `true` iff no stage violated the recovery contract.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One tortured instance: a workload/config pair whose governed FTF run
/// truncates under a tiny state cap, plus the PIF horizon and bounds.
struct Torture {
    w: Workload,
    cfg: SimConfig,
    pif_at: u64,
    bounds: Vec<u64>,
}

/// Probe derived seeds until the governed FTF run actually truncates
/// (the generator randomizes instance size, so not every seed does).
fn torture_instance(seed: u64) -> Torture {
    for probe in 0..256 {
        let w = mcp_workloads::random_disjoint(derive_seed(seed, probe), 2, 8, 4);
        let cfg = SimConfig::new(3, 1);
        let budget = Budget::unlimited().with_max_states(2);
        if matches!(
            ftf_dp_governed(&w, cfg, FtfOptions::default(), &budget, None),
            Ok(FtfOutcome::Truncated(_))
        ) {
            let bounds: Vec<u64> = (0..w.num_cores())
                .map(|i| lru_faults(w.sequence(i), (cfg.cache_size / w.num_cores()).max(1)))
                .collect();
            return Torture {
                w,
                cfg,
                pif_at: 6,
                bounds,
            };
        }
    }
    unreachable!("no derived seed produced a truncating instance");
}

fn ftf_complete(t: &Torture, jobs: usize, resume: Option<&FtfCheckpoint>) -> (u64, usize) {
    let options = FtfOptions {
        jobs,
        ..FtfOptions::default()
    };
    match ftf_dp_governed(&t.w, t.cfg, options, &Budget::unlimited(), resume)
        .expect("tiny instance")
    {
        FtfOutcome::Complete(r) => (r.min_faults, r.states),
        FtfOutcome::Truncated(_) => unreachable!("unlimited budget cannot truncate"),
    }
}

fn ftf_truncated(t: &Torture, jobs: usize) -> FtfCheckpoint {
    let options = FtfOptions {
        jobs,
        ..FtfOptions::default()
    };
    let budget = Budget::unlimited().with_max_states(2);
    match ftf_dp_governed(&t.w, t.cfg, options, &budget, None).expect("tiny instance") {
        FtfOutcome::Truncated(tr) => tr.checkpoint,
        FtfOutcome::Complete(_) => unreachable!("torture_instance() guarantees truncation"),
    }
}

fn pif_decide(t: &Torture, jobs: usize, resume: Option<&PifCheckpoint>) -> Option<bool> {
    let opts = PifOptions {
        jobs,
        ..PifOptions::default()
    };
    match pif_decide_governed(
        &t.w,
        t.cfg,
        t.pif_at,
        &t.bounds,
        opts,
        &Budget::unlimited(),
        resume,
    )
    .expect("tiny instance")
    {
        PifOutcome::Decided(feasible) => Some(feasible),
        PifOutcome::Truncated(_) => None,
    }
}

fn pif_truncated(t: &Torture) -> Option<PifCheckpoint> {
    let budget = Budget::unlimited().with_max_states(2);
    match pif_decide_governed(
        &t.w,
        t.cfg,
        t.pif_at,
        &t.bounds,
        PifOptions::default(),
        &budget,
        None,
    )
    .expect("tiny instance")
    {
        PifOutcome::Truncated(tr) => Some(tr.checkpoint),
        PifOutcome::Decided(_) => None,
    }
}

/// Parse arbitrary bytes under `catch_unwind`; a panic is itself a
/// violation, reported by the caller.
fn parse<T>(
    bytes: &[u8],
    from_bytes: impl Fn(&[u8]) -> Result<T, CheckpointError>,
) -> Result<Result<T, CheckpointError>, String> {
    catch_unwind(AssertUnwindSafe(|| from_bytes(bytes))).map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic".to_string())
    })
}

/// Run the torture harness. Instances run sequentially (each stage arms
/// a process-global fault plan); the parallelism under test is inside
/// each solver call via its `jobs` option.
pub fn run_torture(options: &ChaosOptions) -> ChaosReport {
    let mut report = ChaosReport {
        instances: options.instances,
        ..ChaosReport::default()
    };
    let mut plan = options.plan;
    plan.max_consecutive = plan.max_consecutive.min(mcp_chaos::io::MAX_IO_ATTEMPTS - 1);
    std::fs::create_dir_all(&options.scratch_dir).ok();
    // Divergences inside solver retries are expected panics; keep the
    // default hook from spraying stderr (and differing across jobs).
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for i in 0..options.instances {
        let seed = derive_seed(options.seed, i as u64);
        let t = torture_instance(seed);
        torture_one(i, seed, &t, options, plan, &mut report);
    }
    std::panic::set_hook(hook);
    report
}

fn torture_one(
    i: usize,
    seed: u64,
    t: &Torture,
    options: &ChaosOptions,
    plan: FaultPlan,
    report: &mut ChaosReport,
) {
    let violation = |report: &mut ChaosReport, stage: &str, detail: String| {
        report
            .violations
            .push(format!("instance {i} [{stage}]: {detail}"));
    };
    let reference = ftf_complete(t, 1, None);
    let pif_reference = pif_decide(t, 1, None);
    let ftf_ck = ftf_truncated(t, 1);
    let ftf_bytes = ftf_ck.to_bytes();
    let pif_ck = pif_truncated(t);
    let pif_bytes = pif_ck.as_ref().map(|ck| ck.to_bytes());

    // Stage 1: every strict byte prefix must fail typed.
    for len in 0..ftf_bytes.len() {
        report.prefix_parses += 1;
        match parse(&ftf_bytes[..len], FtfCheckpoint::from_bytes) {
            Err(panic) => violation(
                report,
                "prefix",
                format!("ftf prefix {len}: panic: {panic}"),
            ),
            Ok(Ok(_)) => violation(report, "prefix", format!("ftf prefix {len}: parsed")),
            Ok(Err(_)) => {}
        }
    }
    if let Some(bytes) = &pif_bytes {
        for len in 0..bytes.len() {
            report.prefix_parses += 1;
            match parse(&bytes[..len], PifCheckpoint::from_bytes) {
                Err(panic) => violation(
                    report,
                    "prefix",
                    format!("pif prefix {len}: panic: {panic}"),
                ),
                Ok(Ok(_)) => violation(report, "prefix", format!("pif prefix {len}: parsed")),
                Ok(Err(_)) => {}
            }
        }
    }

    // Stage 2: sampled single-bit flips — typed error, or (checksum
    // collision) a resume that still reaches the reference result.
    for flip in 0..options.bit_flips {
        report.bit_flip_parses += 1;
        let pos = (derive_seed(seed, 0xB17 + flip as u64) % (ftf_bytes.len() as u64 * 8)) as usize;
        let mut mutated = ftf_bytes.clone();
        mutated[pos / 8] ^= 1 << (pos % 8);
        match parse(&mutated, FtfCheckpoint::from_bytes) {
            Err(panic) => violation(report, "bit-flip", format!("bit {pos}: panic: {panic}")),
            Ok(Err(_)) => {}
            Ok(Ok(ck)) => {
                let resumed = ftf_complete(t, 1, Some(&ck));
                if resumed != reference {
                    violation(
                        report,
                        "bit-flip",
                        format!(
                            "bit {pos}: parsed and silently diverged \
                             ({resumed:?} vs reference {reference:?})"
                        ),
                    );
                }
            }
        }
    }

    // Stage 3: resuming the genuine checkpoints at every jobs level
    // reproduces the reference bit-for-bit.
    for &jobs in &options.jobs {
        report.resume_checks += 1;
        let resumed = ftf_complete(t, jobs, Some(&ftf_ck));
        if resumed != reference {
            violation(
                report,
                "resume",
                format!("ftf jobs={jobs}: {resumed:?} vs reference {reference:?}"),
            );
        }
        if let Some(ck) = &pif_ck {
            let resumed = pif_decide(t, jobs, Some(ck));
            if resumed != pif_reference {
                violation(
                    report,
                    "resume",
                    format!("pif jobs={jobs}: {resumed:?} vs reference {pif_reference:?}"),
                );
            }
        }
    }

    // Stage 4: a simulated crash on every write attempt must error out
    // while the previous target survives byte-identical, tmp-free.
    report.crash_sims += 1;
    let path = options.scratch_dir.join(format!("crash-{i}.mcpk"));
    if let Err(e) = ftf_ck.save(&path) {
        violation(report, "crash-sim", format!("unarmed save failed: {e}"));
    } else {
        let before = std::fs::read(&path).unwrap_or_default();
        {
            let _guard = arm_scoped(FaultPlan::write_crash(derive_seed(seed, 0xC4A5)));
            if ftf_ck.save(&path).is_ok() {
                violation(
                    report,
                    "crash-sim",
                    "save succeeded under write_crash".into(),
                );
            }
        }
        let after = std::fs::read(&path).unwrap_or_default();
        if after != before {
            violation(
                report,
                "crash-sim",
                "target file was torn by a crashed save".into(),
            );
        }
        if mcp_chaos::io::temp_sibling(&path).exists() {
            violation(report, "crash-sim", "temp sibling left behind".into());
        }
        std::fs::remove_file(&path).ok();
    }

    // Stage 5: the full faulted chain — truncate, save, load, resume —
    // under the bounded plan, at every jobs level.
    let mut chain_plan = plan;
    chain_plan.seed = derive_seed(plan.seed, i as u64);
    let path = options.scratch_dir.join(format!("chain-{i}.mcpk"));
    let _guard = arm_scoped(chain_plan);
    for &jobs in &options.jobs {
        report.faulted_chains += 1;
        let ck = ftf_truncated(t, jobs);
        let resume = match ck.save(&path) {
            Err(e) => {
                violation(
                    report,
                    "faulted-chain",
                    format!("jobs={jobs}: bounded-plan save failed: {e}"),
                );
                None
            }
            Ok(()) => match FtfCheckpoint::load(&path) {
                Ok(loaded) => {
                    if loaded != ck {
                        violation(
                            report,
                            "faulted-chain",
                            format!("jobs={jobs}: load silently diverged from the saved snapshot"),
                        );
                    }
                    Some(loaded)
                }
                // Injected read corruption: the checksum catches it and
                // the recovery policy restarts from scratch.
                Err(CheckpointError::Corrupt(_)) => None,
                Err(e) => {
                    violation(
                        report,
                        "faulted-chain",
                        format!("jobs={jobs}: unexpected load error class: {e}"),
                    );
                    None
                }
            },
        };
        // The solver itself runs under the armed plan too: its internal
        // retry budget must clear injected task faults.
        let finished = retry_complete(t, jobs, resume.as_ref());
        if finished != reference {
            violation(
                report,
                "faulted-chain",
                format!("jobs={jobs}: {finished:?} vs reference {reference:?}"),
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Complete an FTF run under an armed plan, retrying whole-run injected
/// panics (the solver's own parallel sections do not retry internally).
fn retry_complete(t: &Torture, jobs: usize, resume: Option<&FtfCheckpoint>) -> (u64, usize) {
    for _ in 0..FUZZ_CHAOS_ATTEMPTS {
        match catch_unwind(AssertUnwindSafe(|| ftf_complete(t, jobs, resume))) {
            Ok(result) => return result,
            Err(_) => continue,
        }
    }
    // Surface a deterministic sentinel the caller reports as a violation.
    (u64::MAX, usize::MAX)
}
