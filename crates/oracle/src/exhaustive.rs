//! Tiny-scale exhaustive offline oracles: brute-force searches over every
//! eviction (and, for PIF, voluntary-eviction; for the scheduling model,
//! stalling) choice, written with cloned `Vec`/`HashSet` states and zero
//! cleverness. They re-derive the answers of `mcp_offline`'s `ftf_dp`,
//! `pif_decide` and `sched_min` from nothing but the model rules, so the
//! dynamic programs are checked against an independent transcription
//! instead of their own recorded fingerprints.
//!
//! Exponential in every direction — feed these single-digit-length
//! instances only. Every entry point takes a node cap and returns `None`
//! when it trips, so callers simply skip the cross-check on instances that
//! turn out too large.

use mcp_core::{CapacitySchedule, PageId, SimConfig, Time, Workload};
use std::collections::HashSet;

/// The full model state between timesteps, cloned at every branch.
#[derive(Clone, Debug)]
struct State {
    /// Next request index per core.
    pos: Vec<usize>,
    /// Issue time of each core's next request.
    ready: Vec<Time>,
    /// Resident pages (readable by every core).
    resident: Vec<PageId>,
    /// In-flight fetches: `(page, time at which it becomes resident)`.
    in_flight: Vec<(PageId, Time)>,
    /// Total faults so far.
    faults: u64,
    /// Per-core faults issued at or before the PIF checkpoint.
    faults_at_cp: Vec<u64>,
    /// Capacity limit currently in force (`K(t)` after the changes applied
    /// so far; constant `cfg.cache_size` for fixed-capacity searches).
    limit: usize,
    /// Number of capacity-schedule changes already applied.
    cap_idx: usize,
}

impl State {
    fn initial(p: usize, limit: usize) -> State {
        State {
            pos: vec![0; p],
            ready: vec![1; p],
            resident: Vec::new(),
            in_flight: Vec::new(),
            faults: 0,
            faults_at_cp: vec![0; p],
            limit,
            cap_idx: 0,
        }
    }

    /// Earliest time any unfinished core issues, if any.
    fn next_event(&self, w: &Workload) -> Option<Time> {
        (0..w.num_cores())
            .filter(|&c| self.pos[c] < w.len(c))
            .map(|c| self.ready[c])
            .min()
    }

    /// Make every fetch completed by `now` resident.
    fn promote(&mut self, now: Time) {
        let (done, pending): (Vec<_>, Vec<_>) = self.in_flight.iter().partition(|(_, r)| *r <= now);
        self.resident.extend(done.into_iter().map(|(p, _)| p));
        self.in_flight = pending;
    }

    /// Cores issuing a request at `t`, in increasing core order.
    fn due(&self, w: &Workload, t: Time) -> Vec<usize> {
        (0..w.num_cores())
            .filter(|&c| self.pos[c] < w.len(c) && self.ready[c] == t)
            .collect()
    }

    /// Pages requested by the due cores at `t` (the pinned set `R(t)`).
    fn requested(&self, w: &Workload, due: &[usize]) -> HashSet<PageId> {
        due.iter().map(|&c| w.sequence(c)[self.pos[c]]).collect()
    }

    fn occupied(&self) -> usize {
        self.resident.len() + self.in_flight.len()
    }

    /// `true` iff `page` appears in some core's remaining requests.
    fn requested_later(&self, w: &Workload, page: PageId) -> bool {
        (0..w.num_cores()).any(|c| w.sequence(c)[self.pos[c]..].contains(&page))
    }
}

// ---------------------------------------------------------------------------
// FINAL-TOTAL-FAULTS: minimum total faults over all victim choices.
// Honest (lazy) service is optimal for this objective (paper, Theorem 4),
// so the search branches over victims only.
// ---------------------------------------------------------------------------

struct MinFaults<'w> {
    w: &'w Workload,
    cfg: SimConfig,
    capacity: &'w CapacitySchedule,
    best: u64,
    nodes: usize,
    cap: usize,
    tripped: bool,
}

impl MinFaults<'_> {
    fn at_time(&mut self, mut st: State) {
        if self.tripped || st.faults >= self.best {
            return;
        }
        let Some(mut t) = st.next_event(self.w) else {
            self.best = self.best.min(st.faults);
            return;
        };
        // A capacity change before the next request is itself an event:
        // the forced shrink evictions happen at the change time, not when
        // the next request arrives.
        let changes = self.capacity.changes();
        if let Some(&(ct, _)) = changes.get(st.cap_idx) {
            if ct < t {
                t = ct;
            }
        }
        st.promote(t);
        while st.cap_idx < changes.len() && changes[st.cap_idx].0 <= t {
            st.limit = changes[st.cap_idx].1;
            st.cap_idx += 1;
        }
        let due = st.due(self.w, t);
        let pinned = st.requested(self.w, &due);
        self.shrink(st, t, &due, &pinned, 0);
    }

    /// Branch over every way of evicting down to the limit after a
    /// capacity drop (the offline algorithm chooses the shrink victims
    /// too). `start` enforces increasing-index victim choice so each
    /// victim *set* is tried exactly once. No-op when within the limit.
    fn shrink(
        &mut self,
        st: State,
        t: Time,
        due: &[usize],
        pinned: &HashSet<PageId>,
        start: usize,
    ) {
        if self.tripped || st.faults >= self.best {
            return;
        }
        if st.occupied() <= st.limit {
            self.serve(st, t, due, 0, pinned);
            return;
        }
        for v in start..st.resident.len() {
            if pinned.contains(&st.resident[v]) {
                continue;
            }
            let mut next = st.clone();
            next.resident.remove(v);
            self.shrink(next, t, due, pinned, v);
        }
        // Over the limit with nothing evictable (all pinned/in-flight)
        // cannot happen while K(t) ≥ p; falling through prunes the branch.
    }

    fn serve(&mut self, mut st: State, t: Time, due: &[usize], i: usize, pinned: &HashSet<PageId>) {
        self.nodes += 1;
        if self.nodes > self.cap {
            self.tripped = true;
        }
        if self.tripped || st.faults >= self.best {
            return;
        }
        let Some(&core) = due.get(i) else {
            self.at_time(st);
            return;
        };
        let page = self.w.sequence(core)[st.pos[core]];
        st.pos[core] += 1;
        if st.resident.contains(&page) {
            st.ready[core] = t + 1; // hit
            self.serve(st, t, due, i + 1, pinned);
        } else if st.in_flight.iter().any(|(p, _)| *p == page) {
            st.faults += 1; // shared-fetch join: fault, no new cell
            st.ready[core] = t + self.cfg.tau + 1;
            self.serve(st, t, due, i + 1, pinned);
        } else {
            st.faults += 1;
            st.ready[core] = t + self.cfg.tau + 1;
            if st.occupied() < st.limit {
                st.in_flight.push((page, t + self.cfg.tau + 1));
                self.serve(st, t, due, i + 1, pinned);
            } else {
                // Branch over every legal victim: resident and not read
                // this parallel step. In-flight cells are never victims.
                for v in 0..st.resident.len() {
                    if pinned.contains(&st.resident[v]) {
                        continue;
                    }
                    let mut next = st.clone();
                    next.resident.swap_remove(v);
                    next.in_flight.push((page, t + self.cfg.tau + 1));
                    self.serve(next, t, due, i + 1, pinned);
                }
            }
        }
    }
}

/// Exhaustive minimum total faults, or `None` if the search exceeded
/// `max_nodes`. Cross-checks [`mcp_offline::ftf_min_faults`].
pub fn oracle_min_faults(w: &Workload, cfg: SimConfig, max_nodes: usize) -> Option<u64> {
    let capacity = CapacitySchedule::fixed(cfg.cache_size);
    oracle_min_faults_with_capacity(w, cfg, &capacity, max_nodes)
}

/// Exhaustive minimum total faults under a dynamic capacity schedule
/// `K(t)`, or `None` if the search exceeded `max_nodes`. The search
/// branches over fault victims *and* over which pages to shed at each
/// capacity drop, so it lower-bounds every honest strategy under the
/// schedule — the K(t)-aware ground truth behind experiment X05.
pub fn oracle_min_faults_with_capacity(
    w: &Workload,
    cfg: SimConfig,
    capacity: &CapacitySchedule,
    max_nodes: usize,
) -> Option<u64> {
    assert_eq!(
        capacity.initial_k(),
        cfg.cache_size,
        "capacity schedule must start at the configured cache size"
    );
    assert!(
        capacity.min_k() >= w.num_cores(),
        "capacity schedule must keep K(t) >= p"
    );
    let mut search = MinFaults {
        w,
        cfg,
        capacity,
        best: u64::MAX,
        nodes: 0,
        cap: max_nodes,
        tripped: false,
    };
    search.at_time(State::initial(w.num_cores(), cfg.cache_size));
    (!search.tripped).then_some(search.best)
}

// ---------------------------------------------------------------------------
// PARTIAL-INDIVIDUAL-FAULTS: can the workload be served so that core j has
// faulted at most bounds[j] times by the checkpoint? Unlike FTF, honesty is
// NOT known to be WLOG here — deliberately evicting a page (slowing one
// core within its bound) can save another core a fault. Every voluntary
// eviction is equivalent to dropping pages in the transition into the next
// event step (contents are unobservable between events), so the search
// additionally branches over drop subsets before serving each step.
// ---------------------------------------------------------------------------

struct Pif<'w> {
    w: &'w Workload,
    cfg: SimConfig,
    checkpoint: Time,
    bounds: &'w [u64],
    found: bool,
    nodes: usize,
    cap: usize,
    tripped: bool,
}

impl Pif<'_> {
    fn at_time(&mut self, mut st: State) {
        if self.found || self.tripped {
            return;
        }
        let Some(t) = st.next_event(self.w) else {
            self.found = true; // everything served within bounds
            return;
        };
        if t > self.checkpoint {
            self.found = true; // no fault at ≤ checkpoint can still occur
            return;
        }
        st.promote(t);
        let due = st.due(self.w, t);
        let pinned = st.requested(self.w, &due);
        // Droppable pages: resident, not requested this step, and requested
        // again later (dropping a never-reused page changes nothing).
        let droppable: Vec<usize> = (0..st.resident.len())
            .filter(|&v| {
                !pinned.contains(&st.resident[v]) && st.requested_later(self.w, st.resident[v])
            })
            .collect();
        for mask in 0..(1usize << droppable.len()) {
            let mut next = st.clone();
            // Remove highest indices first so earlier indices stay valid.
            for (bit, &v) in droppable.iter().enumerate().rev() {
                if mask >> bit & 1 == 1 {
                    next.resident.swap_remove(v);
                }
            }
            self.serve(next, t, &due, 0, &pinned);
            if self.found || self.tripped {
                return;
            }
        }
    }

    fn serve(&mut self, mut st: State, t: Time, due: &[usize], i: usize, pinned: &HashSet<PageId>) {
        self.nodes += 1;
        if self.nodes > self.cap {
            self.tripped = true;
        }
        if self.found || self.tripped {
            return;
        }
        let Some(&core) = due.get(i) else {
            self.at_time(st);
            return;
        };
        let page = self.w.sequence(core)[st.pos[core]];
        st.pos[core] += 1;
        let fault = |st: &mut State| -> bool {
            st.faults += 1;
            if t <= self.checkpoint {
                st.faults_at_cp[core] += 1;
            }
            st.ready[core] = t + self.cfg.tau + 1;
            st.faults_at_cp[core] <= self.bounds[core]
        };
        if st.resident.contains(&page) {
            st.ready[core] = t + 1;
            self.serve(st, t, due, i + 1, pinned);
        } else if st.in_flight.iter().any(|(p, _)| *p == page) {
            if fault(&mut st) {
                self.serve(st, t, due, i + 1, pinned);
            }
        } else {
            if !fault(&mut st) {
                return;
            }
            if st.occupied() < self.cfg.cache_size {
                st.in_flight.push((page, t + self.cfg.tau + 1));
                self.serve(st, t, due, i + 1, pinned);
            } else {
                for v in 0..st.resident.len() {
                    if pinned.contains(&st.resident[v]) {
                        continue;
                    }
                    let mut next = st.clone();
                    next.resident.swap_remove(v);
                    next.in_flight.push((page, t + self.cfg.tau + 1));
                    self.serve(next, t, due, i + 1, pinned);
                    if self.found || self.tripped {
                        return;
                    }
                }
            }
        }
    }
}

/// Exhaustive PARTIAL-INDIVIDUAL-FAULTS decision, or `None` if the search
/// exceeded `max_nodes`. Cross-checks [`mcp_offline::pif_decide`].
pub fn oracle_pif_feasible(
    w: &Workload,
    cfg: SimConfig,
    checkpoint: Time,
    bounds: &[u64],
    max_nodes: usize,
) -> Option<bool> {
    assert_eq!(bounds.len(), w.num_cores());
    let mut search = Pif {
        w,
        cfg,
        checkpoint,
        bounds,
        found: false,
        nodes: 0,
        cap: max_nodes,
        tripped: false,
    };
    search.at_time(State::initial(w.num_cores(), cfg.cache_size));
    if search.found {
        Some(true) // a witness is a witness, even if the cap tripped later
    } else {
        (!search.tripped).then_some(false)
    }
}

// ---------------------------------------------------------------------------
// The scheduling-capable model (Hassidim's): at every timestep any due core
// may be stalled for one tick instead of served. Mirrors the model of
// `mcp_offline::sched_min`: pins accumulate in serve order (a page is
// protected once a core already chose to read it this step), in-flight
// cells are never victims.
// ---------------------------------------------------------------------------

struct Sched<'w> {
    w: &'w Workload,
    cfg: SimConfig,
    horizon: Time,
    best: u64,
    nodes: usize,
    cap: usize,
    tripped: bool,
}

impl Sched<'_> {
    fn at_time(&mut self, mut st: State) {
        if self.tripped || st.faults >= self.best {
            return;
        }
        let Some(t) = st.next_event(self.w) else {
            self.best = self.best.min(st.faults);
            return;
        };
        if t > self.horizon {
            return;
        }
        st.promote(t);
        let due = st.due(self.w, t);
        self.serve(st, t, &due, 0, HashSet::new());
    }

    fn serve(&mut self, mut st: State, t: Time, due: &[usize], i: usize, pinned: HashSet<PageId>) {
        self.nodes += 1;
        if self.nodes > self.cap {
            self.tripped = true;
        }
        if self.tripped || st.faults >= self.best {
            return;
        }
        let Some(&core) = due.get(i) else {
            self.at_time(st);
            return;
        };

        // Option A: stall this core for one timestep (the scheduling power).
        let mut stalled = st.clone();
        stalled.ready[core] = t + 1;
        self.serve(stalled, t, due, i + 1, pinned.clone());

        // Option B: serve it.
        let page = self.w.sequence(core)[st.pos[core]];
        st.pos[core] += 1;
        if st.resident.contains(&page) {
            st.ready[core] = t + 1;
            let mut pinned = pinned;
            pinned.insert(page);
            self.serve(st, t, due, i + 1, pinned);
        } else if st.in_flight.iter().any(|(p, _)| *p == page) {
            st.faults += 1; // join the in-flight fetch (it cannot be evicted)
            st.ready[core] = t + self.cfg.tau + 1;
            self.serve(st, t, due, i + 1, pinned);
        } else {
            st.faults += 1;
            st.ready[core] = t + self.cfg.tau + 1;
            let mut pinned = pinned;
            pinned.insert(page);
            if st.occupied() < self.cfg.cache_size {
                st.in_flight.push((page, t + self.cfg.tau + 1));
                self.serve(st, t, due, i + 1, pinned);
            } else {
                for v in 0..st.resident.len() {
                    if pinned.contains(&st.resident[v]) {
                        continue;
                    }
                    let mut next = st.clone();
                    next.resident.swap_remove(v);
                    next.in_flight.push((page, t + self.cfg.tau + 1));
                    self.serve(next, t, due, i + 1, pinned.clone());
                }
            }
        }
    }
}

/// Exhaustive minimum total faults in the scheduling-capable model, or
/// `None` if the search exceeded `max_nodes` or no schedule completed
/// within `horizon`. Cross-checks [`mcp_offline::sched_min`].
pub fn oracle_sched_min_faults(
    w: &Workload,
    cfg: SimConfig,
    horizon: Time,
    max_nodes: usize,
) -> Option<u64> {
    let mut search = Sched {
        w,
        cfg,
        horizon,
        best: u64::MAX,
        nodes: 0,
        cap: max_nodes,
        tripped: false,
    };
    search.at_time(State::initial(w.num_cores(), cfg.cache_size));
    (!search.tripped && search.best != u64::MAX).then_some(search.best)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: usize = 5_000_000;

    fn w(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn min_faults_on_known_instances() {
        // Single core, K=2: [1,2,3,1,2] — OPT evicts the furthest page.
        let wl = w(&[&[1, 2, 3, 1, 2]]);
        assert_eq!(
            oracle_min_faults(&wl, SimConfig::new(2, 0), CAP),
            Some(4) // 1,2,3 cold; keep {3,1}? Belady: evict 2 at 3 → 1 hits, 2 faults
        );
        // Aligned thrash: K=2, both cores alternate, every request faults.
        let wl = w(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        assert_eq!(oracle_min_faults(&wl, SimConfig::new(2, 1), CAP), Some(8));
    }

    #[test]
    fn pif_trivially_feasible_and_infeasible() {
        let wl = w(&[&[1, 2], &[7, 8]]);
        let cfg = SimConfig::new(4, 0);
        // Everything fits: cold misses only, bounds = 2 each at the end.
        assert_eq!(oracle_pif_feasible(&wl, cfg, 10, &[2, 2], CAP), Some(true));
        // No schedule avoids the cold miss at t = 1.
        assert_eq!(oracle_pif_feasible(&wl, cfg, 10, &[0, 2], CAP), Some(false));
    }

    #[test]
    fn sched_matches_no_sched_for_single_core() {
        let wl = w(&[&[1, 2, 3, 1, 2]]);
        let cfg = SimConfig::new(2, 1);
        let horizon = (wl.total_len() as u64 + 4) * (cfg.tau + 1) + 4;
        assert_eq!(
            oracle_sched_min_faults(&wl, cfg, horizon, CAP),
            oracle_min_faults(&wl, cfg, CAP)
        );
    }

    #[test]
    fn fixed_capacity_schedule_matches_plain_oracle() {
        let cases: &[(&[&[u32]], usize, u64)] = &[
            (&[&[1, 2, 3, 1, 2]], 2, 0),
            (&[&[1, 2, 1, 2], &[7, 8, 7, 8]], 2, 1),
            (&[&[1, 2, 3, 1], &[7, 8, 7]], 3, 2),
        ];
        for &(seqs, k, tau) in cases {
            let wl = w(seqs);
            let cfg = SimConfig::new(k, tau);
            let fixed = CapacitySchedule::fixed(k);
            assert_eq!(
                oracle_min_faults_with_capacity(&wl, cfg, &fixed, CAP),
                oracle_min_faults(&wl, cfg, CAP),
            );
        }
    }

    #[test]
    fn capacity_drop_forces_extra_faults() {
        // Single core, K=3, working set {1,2,3} fits — 3 cold faults and
        // the rest hit. Dropping to K=2 at t=4 forces OPT to shed a page
        // it still needs: strictly more than the fixed-K minimum.
        let wl = w(&[&[1, 2, 3, 1, 2, 3, 1, 2, 3]]);
        let cfg = SimConfig::new(3, 0);
        let fixed = oracle_min_faults(&wl, cfg, CAP).unwrap();
        assert_eq!(fixed, 3);
        let schedule: CapacitySchedule = "3,2@4".parse().unwrap();
        let dropped = oracle_min_faults_with_capacity(&wl, cfg, &schedule, CAP).unwrap();
        assert!(
            dropped > fixed,
            "capacity drop must cost OPT extra faults ({dropped} vs {fixed})"
        );
        // Best play: shed 3 at the drop (hit 1,2), then alternate —
        // fault 3 evicting 2, hit 1, fault 2 evicting the dead 1, hit 3.
        assert_eq!(dropped, 5);
    }

    #[test]
    fn harmless_drop_leaves_optimum_unchanged() {
        // Working set {1,2} fits in 2 cells, so dropping K from 3 to 2 at
        // t=3 never forces OPT to shed a live page: minimum unchanged.
        let wl = w(&[&[1, 2, 1, 2, 1, 2]]);
        let cfg = SimConfig::new(3, 0);
        let schedule: CapacitySchedule = "3,2@3".parse().unwrap();
        assert_eq!(
            oracle_min_faults_with_capacity(&wl, cfg, &schedule, CAP),
            oracle_min_faults(&wl, cfg, CAP),
        );
    }

    #[test]
    fn node_cap_trips_to_none() {
        let wl = w(&[&[1, 2, 3, 4, 1, 2, 3, 4], &[7, 8, 9, 7, 8, 9]]);
        assert_eq!(oracle_min_faults(&wl, SimConfig::new(3, 1), 10), None);
    }
}
