//! End-to-end `mcp serve` tests against the built binary: deterministic
//! replay across `--jobs`, fault parity through `mcp simulate -`, chaos
//! survival with uncorrupted snapshots, socket mode with a `mcp blast`
//! client and a clean SIGINT exit, and the offline-strategy guard.

use std::io::Write;
use std::process::{Command, Stdio};

fn mcp_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mcp"));
    cmd.env_remove("MCP_CHAOS");
    cmd
}

fn run(args: &[&str]) -> (Option<i32>, String, String) {
    let out = mcp_cmd().args(args).output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("mcp_serve_e2e_{}_{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// Extract `"key":<digits>` from a one-line JSON snapshot.
fn json_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let i = line
        .find(&pat)
        .unwrap_or_else(|| panic!("{key} missing in {line}"))
        + pat.len();
    line[i..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Sanity-check a snapshot line's shape and accounting invariant.
fn check_snapshot(line: &str) {
    assert!(
        line.starts_with('{') && line.ends_with('}'),
        "bad json: {line}"
    );
    let offered = json_u64(line, "offered");
    let admitted = json_u64(line, "admitted");
    let dropped = json_u64(line, "dropped");
    assert_eq!(offered, admitted + dropped, "conservation broke: {line}");
    for key in ["seq", "served", "backlog", "total_faults", "makespan"] {
        json_u64(line, key); // present and numeric
    }
    assert!(line.contains("\"latency_ns\""));
    assert!(line.contains("\"jain_slowdown\""));
}

fn serve_seeded(
    discipline: &str,
    jobs: &str,
    log_path: &str,
    extra_env: Option<(&str, &str)>,
) -> (Option<i32>, String, String) {
    let mut cmd = mcp_cmd();
    cmd.args([
        "serve",
        "--cores",
        "3",
        "--k",
        "12",
        "--tau",
        "3",
        "--strategy",
        "lru",
        "--discipline",
        discipline,
        "--seed",
        "41",
        "--n",
        "30000",
        "--universe",
        "30",
        "--jobs",
        jobs,
        "--snapshot-ms",
        "50",
        "--replay-log",
        log_path,
    ]);
    if let Some((k, v)) = extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn seeded_replay_logs_are_byte_identical_across_jobs_and_faults_survive_simulate_stdin() {
    for discipline in ["dfcfs", "cfcfs"] {
        let mut logs = Vec::new();
        for jobs in ["1", "2", "4"] {
            let path = tmp(&format!("replay_{discipline}_{jobs}.trace"));
            let (code, stdout, stderr) = serve_seeded(discipline, jobs, &path, None);
            assert_eq!(code, Some(0), "serve failed: {stderr}");
            for line in stdout.lines() {
                check_snapshot(line);
            }
            let final_line = stdout.lines().last().expect("at least the final snapshot");
            assert_eq!(json_u64(final_line, "served"), 30_000);
            assert_eq!(json_u64(final_line, "dropped"), 0, "lossless seeded mode");
            logs.push((std::fs::read(&path).unwrap(), final_line.to_string()));
            std::fs::remove_file(&path).ok();
        }
        assert_eq!(logs[0].0, logs[1].0, "{discipline}: --jobs 1 vs 2 diverged");
        assert_eq!(logs[0].0, logs[2].0, "{discipline}: --jobs 1 vs 4 diverged");

        // Pipe the replay log into `mcp simulate -`: identical fault count.
        let served_faults = json_u64(&logs[0].1, "total_faults");
        let mut child = mcp_cmd()
            .args([
                "simulate",
                "--trace",
                "-",
                "--k",
                "12",
                "--tau",
                "3",
                "--strategy",
                "lru",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.take().unwrap().write_all(&logs[0].0).unwrap();
        let out = child.wait_with_output().unwrap();
        assert_eq!(out.status.code(), Some(0));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains(&format!("total: {served_faults} faults")),
            "{discipline}: simulate - reported different faults; served {served_faults}, got:\n{text}"
        );
    }
}

#[test]
fn capacity_replay_log_pipes_byte_identically_into_simulate() {
    // The replay contract under a dynamic schedule: serve --capacity,
    // then pipe the admitted log into `mcp simulate --trace -` with the
    // SAME schedule — identical fault count. Without the schedule the
    // count differs, proving the schedule actually bit on both sides.
    const SPEC: &str = "12,4@40,12@90";
    let path = tmp("cap_replay.trace");
    let out = mcp_cmd()
        .args([
            "serve",
            "--cores",
            "3",
            "--k",
            "12",
            "--tau",
            "2",
            "--strategy",
            "lru",
            "--seed",
            "17",
            "--n",
            "5000",
            "--universe",
            "24",
            "--capacity",
            SPEC,
            "--replay-log",
            &path,
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "serve --capacity failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let final_line = stdout.lines().last().expect("final snapshot");
    check_snapshot(final_line);
    let served_faults = json_u64(final_line, "total_faults");
    let log = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let replay = |extra: &[&str]| -> String {
        let mut args = vec![
            "simulate",
            "--trace",
            "-",
            "--k",
            "12",
            "--tau",
            "2",
            "--strategy",
            "lru",
        ];
        args.extend_from_slice(extra);
        let mut child = mcp_cmd()
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.take().unwrap().write_all(&log).unwrap();
        let out = child.wait_with_output().unwrap();
        assert_eq!(out.status.code(), Some(0));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let with_schedule = replay(&["--capacity", SPEC]);
    assert!(
        with_schedule.contains(&format!("total: {served_faults} faults")),
        "replay under the schedule diverged; served {served_faults}, got:\n{with_schedule}"
    );
    let without_schedule = replay(&[]);
    assert!(
        !without_schedule.contains(&format!("total: {served_faults} faults")),
        "fixed-K replay should fault differently under this drop:\n{without_schedule}"
    );
}

#[test]
fn chaos_armed_serve_stays_deterministic_and_snapshots_stay_parseable() {
    let clean = tmp("chaos_clean.trace");
    let (code, _, stderr) = serve_seeded("dfcfs", "2", &clean, None);
    assert_eq!(code, Some(0), "clean run failed: {stderr}");

    // 6% injected panics at the drain probe, bursts of up to 3: the
    // driver retries through every one; the log must not change and no
    // snapshot line may be corrupted.
    let chaotic = tmp("chaos_armed.trace");
    let (code, stdout, stderr) = serve_seeded(
        "dfcfs",
        "2",
        &chaotic,
        Some(("MCP_CHAOS", "0xBAD5EED:0,0,60,3,0")),
    );
    assert_eq!(code, Some(0), "chaos run failed: {stderr}");
    for line in stdout.lines() {
        check_snapshot(line);
    }
    let final_line = stdout.lines().last().unwrap();
    assert_eq!(json_u64(final_line, "served"), 30_000);
    assert_eq!(
        std::fs::read(&clean).unwrap(),
        std::fs::read(&chaotic).unwrap(),
        "injected faults must not perturb the admitted log"
    );
    std::fs::remove_file(&clean).ok();
    std::fs::remove_file(&chaotic).ok();
}

#[test]
fn socket_mode_serves_blast_traffic_and_exits_cleanly_on_sigint() {
    let sock = tmp("live.sock");
    let server = mcp_cmd()
        .args([
            "serve",
            "--cores",
            "2",
            "--k",
            "8",
            "--strategy",
            "lru",
            "--listen",
            &format!("unix:{sock}"),
            "--snapshot-ms",
            "100",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Wait for the socket to appear (bounded).
    for _ in 0..100 {
        if std::path::Path::new(&sock).exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(std::path::Path::new(&sock).exists(), "server never bound");

    let (code, stdout, stderr) = run(&[
        "blast",
        "--connect",
        &format!("unix:{sock}"),
        "--cores",
        "2",
        "--n",
        "20000",
        "--seed",
        "9",
        "--no-close",
    ]);
    assert_eq!(code, Some(0), "blast failed: {stderr}");
    assert!(stdout.contains("blasted 20000 requests"));

    std::thread::sleep(std::time::Duration::from_millis(400));
    let kill = Command::new("kill")
        .args(["-INT", &server.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let out = server.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "SIGINT must drain and exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = 0;
    for line in stdout.lines() {
        check_snapshot(line);
        lines += 1;
    }
    assert!(lines >= 1, "at least the final snapshot");
    let final_line = stdout.lines().last().unwrap();
    // The blaster bursts 20k offers at bounded rings: whatever was
    // admitted must be fully served, and anything else must show up as
    // explicit drops — nothing is silently lost.
    let admitted = json_u64(final_line, "admitted");
    let served = json_u64(final_line, "served");
    let rejected = json_u64(final_line, "rejected_late");
    assert_eq!(json_u64(final_line, "offered"), 20_000);
    assert_eq!(served + rejected, admitted);
    assert_eq!(json_u64(final_line, "backlog"), 0);
}

#[test]
fn offline_strategies_are_rejected_with_guidance() {
    for spec in ["fitf", "mimic", "partition-opt", "sacrifice"] {
        let (code, _, stderr) = run(&[
            "serve",
            "--cores",
            "2",
            "--k",
            "8",
            "--strategy",
            spec,
            "--seed",
            "1",
        ]);
        assert_eq!(code, Some(1), "{spec} must be refused");
        assert!(
            stderr.contains("offline-only"),
            "{spec}: unhelpful error: {stderr}"
        );
    }
}

#[test]
fn serve_requires_exactly_one_input_mode() {
    let (code, _, stderr) = run(&["serve", "--cores", "2", "--k", "8"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("--seed") && stderr.contains("--listen"));
    let (code, _, stderr) = run(&[
        "serve",
        "--cores",
        "2",
        "--k",
        "8",
        "--seed",
        "1",
        "--listen",
        "unix:/tmp/x.sock",
    ]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("mutually exclusive"));
}

#[test]
fn simulate_stdin_rejects_garbage_with_exit_2() {
    let mut child = mcp_cmd()
        .args(["simulate", "--trace", "-", "--k", "4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"0: 1 2 banana\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(2), "malformed stdin is exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("stdin"),
        "error should mention stdin: {stderr}"
    );
}
