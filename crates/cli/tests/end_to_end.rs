//! True end-to-end tests: spawn the built `mcp` binary and drive a full
//! generate → profile → compare → solve pipeline through its CLI.

use std::process::Command;

fn mcp(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = mcp_code(args);
    (code == Some(0), stdout, stderr)
}

fn mcp_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("mcp_e2e_{}_{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn help_and_errors() {
    let (ok, stdout, _) = mcp(&[]);
    assert!(ok);
    assert!(stdout.contains("usage: mcp"));
    let (ok, _, stderr) = mcp(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = mcp(&["simulate", "--k"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"));
}

#[test]
fn malformed_capacity_spec_exits_2() {
    let trace = tmp("cap_args.json");
    let (ok, _, stderr) = mcp(&[
        "gen",
        "uniform",
        "--cores",
        "2",
        "--n",
        "20",
        "--universe",
        "8",
        "--out",
        &trace,
    ]);
    assert!(ok, "gen failed: {stderr}");
    // Garbage spec, dangling step, and an initial K disagreeing with --k
    // are all argument errors (exit 2), not crashes or exit 1.
    for spec in ["banana", "4,2@", "8,2@5"] {
        let (code, _, stderr) = mcp_code(&[
            "simulate",
            "--trace",
            &trace,
            "--k",
            "4",
            "--capacity",
            spec,
        ]);
        assert_eq!(code, Some(2), "--capacity {spec}: {stderr}");
        assert!(stderr.contains("capacity"), "--capacity {spec}: {stderr}");
    }
    // And a well-formed schedule is accepted end-to-end.
    let (code, stdout, stderr) = mcp_code(&[
        "simulate",
        "--trace",
        &trace,
        "--k",
        "4",
        "--capacity",
        "4,2@5,4@9",
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("K(t) = 4,2@5,4@9"), "{stdout}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn full_pipeline_over_the_shell() {
    let trace = tmp("pipeline.json");

    let (ok, stdout, stderr) = mcp(&[
        "gen",
        "zipf",
        "--cores",
        "2",
        "--n",
        "200",
        "--universe",
        "24",
        "--out",
        &trace,
    ]);
    assert!(ok, "gen failed: {stderr}");
    assert!(stdout.contains("wrote zipf workload"));

    let (ok, stdout, _) = mcp(&["stats", "--trace", &trace]);
    assert!(ok);
    assert!(stdout.contains("disjoint = true"));

    let (ok, stdout, _) = mcp(&["compare", "--trace", &trace, "--k", "8", "--tau", "2"]);
    assert!(ok);
    assert!(stdout.contains("S_LRU"));

    let (ok, stdout, _) = mcp(&[
        "partition",
        "--trace",
        &trace,
        "--k",
        "8",
        "--policy",
        "opt",
    ]);
    assert!(ok);
    assert!(stdout.contains("optimal static partition"));

    let (ok, stdout, _) = mcp(&[
        "simulate",
        "--trace",
        &trace,
        "--k",
        "8",
        "--tau",
        "2",
        "--strategy",
        "lru2",
        "--fairness",
    ]);
    assert!(ok);
    assert!(stdout.contains("S_LRU-2") && stdout.contains("Jain"));

    std::fs::remove_file(&trace).ok();
}

#[test]
fn exact_solvers_over_the_shell() {
    let trace = tmp("solver.json");
    let (ok, _, stderr) = mcp(&[
        "gen", "cycles", "--cores", "2", "--k", "4", "--n", "8", "--out", &trace,
    ]);
    assert!(ok, "{stderr}");

    let (ok, stdout, _) = mcp(&[
        "opt",
        "--trace",
        &trace,
        "--k",
        "4",
        "--tau",
        "1",
        "--schedule",
    ]);
    assert!(ok);
    assert!(stdout.contains("exact minimum total faults"));

    let (ok, stdout, _) = mcp(&[
        "pif",
        "--trace",
        &trace,
        "--k",
        "4",
        "--tau",
        "1",
        "--at",
        "20",
        "--bounds",
        "6,6",
        "--schedule",
    ]);
    assert!(ok);
    assert!(stdout.contains("FEASIBLE") || stdout.contains("no schedule exists"));

    std::fs::remove_file(&trace).ok();
}

#[test]
fn corrupt_traces_exit_2_without_panicking() {
    // Corrupt JSON: truncated mid-array.
    let bad_json = tmp("corrupt.json");
    std::fs::write(&bad_json, "{\"sequences\": [[1, 2, ").unwrap();
    // Corrupt text: a line with a non-numeric page.
    let bad_text = tmp("corrupt.trace");
    std::fs::write(&bad_text, "0: 1 2 three\n").unwrap();

    for trace in [&bad_json, &bad_text] {
        for cmd in [
            &[
                "simulate",
                "--trace",
                trace,
                "--k",
                "4",
                "--strategy",
                "lru",
            ][..],
            &["opt", "--trace", trace, "--k", "3", "--tau", "1"][..],
            &["stats", "--trace", trace][..],
        ] {
            let (code, _, stderr) = mcp_code(cmd);
            assert_eq!(code, Some(2), "{cmd:?} on {trace}: {stderr}");
            assert!(
                stderr.contains("malformed trace"),
                "{cmd:?} must name the parse failure: {stderr}"
            );
            assert!(
                !stderr.contains("panicked"),
                "{cmd:?} must not panic: {stderr}"
            );
        }
    }
    std::fs::remove_file(&bad_json).ok();
    std::fs::remove_file(&bad_text).ok();

    // A genuinely missing file is an I/O error, not a parse error: exit 1.
    let (code, _, _) = mcp_code(&["stats", "--trace", &tmp("nonexistent.json")]);
    assert_eq!(code, Some(1));
}

#[test]
fn opt_deadline_truncates_with_bracket_then_resumes_to_the_exact_answer() {
    let trace = tmp("anytime.json");
    let (ok, _, stderr) = mcp(&[
        "gen", "cycles", "--cores", "2", "--k", "4", "--n", "10", "--out", &trace,
    ]);
    assert!(ok, "{stderr}");

    // The reference answer from an ungoverned run.
    let (ok, full, _) = mcp(&["opt", "--trace", &trace, "--k", "4", "--tau", "1"]);
    assert!(ok);
    assert!(full.contains("exact minimum total faults"));

    // A zero deadline trips at the first bucket boundary: exit 3, a
    // bracket on stderr, and a checkpoint on disk.
    let ckpt = tmp("anytime.ckpt");
    let (code, _, stderr) = mcp_code(&[
        "opt",
        "--trace",
        &trace,
        "--k",
        "4",
        "--tau",
        "1",
        "--deadline",
        "0s",
        "--checkpoint",
        &ckpt,
    ]);
    assert_eq!(code, Some(3), "truncated run must exit 3: {stderr}");
    assert!(
        stderr.contains("anytime bracket") && stderr.contains("<= optimum <="),
        "stderr must print the bracket: {stderr}"
    );
    assert!(
        stderr.contains("checkpoint saved"),
        "stderr must point at the checkpoint: {stderr}"
    );
    assert!(std::path::Path::new(&ckpt).exists());

    // Re-running the same command with a generous deadline resumes from
    // the snapshot, reproduces the exact answer, and removes the file.
    let (code, resumed, stderr) = mcp_code(&[
        "opt",
        "--trace",
        &trace,
        "--k",
        "4",
        "--tau",
        "1",
        "--deadline",
        "5m",
        "--checkpoint",
        &ckpt,
    ]);
    assert_eq!(code, Some(0), "resume must complete: {stderr}");
    assert_eq!(resumed, full, "resumed answer must match the full run");
    assert!(
        !std::path::Path::new(&ckpt).exists(),
        "checkpoint must be removed on completion"
    );

    std::fs::remove_file(&trace).ok();
}

#[test]
fn pif_deadline_truncates_then_resumes_to_the_same_decision() {
    let trace = tmp("pif_anytime.json");
    let (ok, _, stderr) = mcp(&[
        "gen", "cycles", "--cores", "2", "--k", "4", "--n", "10", "--out", &trace,
    ]);
    assert!(ok, "{stderr}");

    let base = [
        "pif", "--trace", &trace, "--k", "4", "--tau", "1", "--at", "16", "--bounds", "5,5",
    ];
    let (ok, full, _) = mcp(&base);
    assert!(ok);

    let ckpt = tmp("pif_anytime.ckpt");
    let mut truncated = base.to_vec();
    truncated.extend(["--deadline", "0s", "--checkpoint", &ckpt]);
    let (code, _, stderr) = mcp_code(&truncated);
    assert_eq!(code, Some(3), "truncated pif must exit 3: {stderr}");
    assert!(
        stderr.contains("feasibility still open") && stderr.contains("checkpoint saved"),
        "{stderr}"
    );

    let mut resume = base.to_vec();
    resume.extend(["--deadline", "5m", "--checkpoint", &ckpt]);
    let (code, resumed, stderr) = mcp_code(&resume);
    assert_eq!(code, Some(0), "pif resume must complete: {stderr}");
    assert_eq!(resumed, full, "resumed decision must match the full run");
    assert!(!std::path::Path::new(&ckpt).exists());

    std::fs::remove_file(&trace).ok();
}

/// Environment-aware spawn for the fuzz tests (the env var must reach the
/// child, not this test process).
fn mcp_env(args: &[&str], env: &[(&str, &str)]) -> (Option<i32>, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mcp"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn fuzz_smoke_is_clean_and_jobs_invariant() {
    let corpus = tmp("fuzz_corpus_clean");
    let mut outputs = Vec::new();
    for jobs in ["1", "2", "4"] {
        let (code, stdout, stderr) = mcp_code(&[
            "fuzz",
            "--instances",
            "12",
            "--seed",
            "0xC5_2011_12",
            "--jobs",
            jobs,
            "--corpus",
            &corpus,
        ]);
        assert_eq!(code, Some(0), "fuzz failed under --jobs {jobs}: {stderr}");
        assert!(stdout.contains("divergences:          0"), "{stdout}");
        outputs.push((stdout, stderr));
    }
    // Bit-identical output at every parallelism level.
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
    // A clean run writes no divergence fixtures.
    assert!(!std::path::Path::new(&corpus).exists());
}

#[test]
fn fuzz_divergence_path_shrinks_writes_fixture_and_exits_nonzero() {
    let corpus = tmp("fuzz_corpus_skew");
    let _ = std::fs::remove_dir_all(&corpus);
    // MCP_ORACLE_SKEW perturbs the reference engine (one phantom fault on
    // core 0), so every differential comparison must diverge.
    let (code, _stdout, stderr) = mcp_env(
        &[
            "fuzz",
            "--instances",
            "2",
            "--seed",
            "5",
            "--families",
            "lru,clock",
            "--corpus",
            &corpus,
        ],
        &[("MCP_ORACLE_SKEW", "1")],
    );
    assert_eq!(code, Some(1), "skewed fuzz must exit 1: {stderr}");
    // The summary names the diverging strategy family and the fixture.
    assert!(stderr.contains("divergence: family=lru"), "{stderr}");
    assert!(stderr.contains("fixture="), "{stderr}");
    // A shrunk, replayable fixture file landed in the corpus directory.
    let fixtures: Vec<_> = std::fs::read_dir(&corpus)
        .expect("corpus dir created")
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("div-"))
        .collect();
    assert!(!fixtures.is_empty(), "no divergence fixture written");
    let text = std::fs::read_to_string(&fixtures[0]).unwrap();
    assert!(text.contains("# mcp-oracle fixture"), "{text}");
    assert!(text.contains("# family:"), "{text}");
    let _ = std::fs::remove_dir_all(&corpus);
}
