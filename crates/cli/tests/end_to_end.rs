//! True end-to-end tests: spawn the built `mcp` binary and drive a full
//! generate → profile → compare → solve pipeline through its CLI.

use std::process::Command;

fn mcp(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("mcp_e2e_{}_{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn help_and_errors() {
    let (ok, stdout, _) = mcp(&[]);
    assert!(ok);
    assert!(stdout.contains("usage: mcp"));
    let (ok, _, stderr) = mcp(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = mcp(&["simulate", "--k"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"));
}

#[test]
fn full_pipeline_over_the_shell() {
    let trace = tmp("pipeline.json");

    let (ok, stdout, stderr) = mcp(&[
        "gen",
        "zipf",
        "--cores",
        "2",
        "--n",
        "200",
        "--universe",
        "24",
        "--out",
        &trace,
    ]);
    assert!(ok, "gen failed: {stderr}");
    assert!(stdout.contains("wrote zipf workload"));

    let (ok, stdout, _) = mcp(&["stats", "--trace", &trace]);
    assert!(ok);
    assert!(stdout.contains("disjoint = true"));

    let (ok, stdout, _) = mcp(&["compare", "--trace", &trace, "--k", "8", "--tau", "2"]);
    assert!(ok);
    assert!(stdout.contains("S_LRU"));

    let (ok, stdout, _) = mcp(&[
        "partition",
        "--trace",
        &trace,
        "--k",
        "8",
        "--policy",
        "opt",
    ]);
    assert!(ok);
    assert!(stdout.contains("optimal static partition"));

    let (ok, stdout, _) = mcp(&[
        "simulate",
        "--trace",
        &trace,
        "--k",
        "8",
        "--tau",
        "2",
        "--strategy",
        "lru2",
        "--fairness",
    ]);
    assert!(ok);
    assert!(stdout.contains("S_LRU-2") && stdout.contains("Jain"));

    std::fs::remove_file(&trace).ok();
}

#[test]
fn exact_solvers_over_the_shell() {
    let trace = tmp("solver.json");
    let (ok, _, stderr) = mcp(&[
        "gen", "cycles", "--cores", "2", "--k", "4", "--n", "8", "--out", &trace,
    ]);
    assert!(ok, "{stderr}");

    let (ok, stdout, _) = mcp(&[
        "opt",
        "--trace",
        &trace,
        "--k",
        "4",
        "--tau",
        "1",
        "--schedule",
    ]);
    assert!(ok);
    assert!(stdout.contains("exact minimum total faults"));

    let (ok, stdout, _) = mcp(&[
        "pif",
        "--trace",
        &trace,
        "--k",
        "4",
        "--tau",
        "1",
        "--at",
        "20",
        "--bounds",
        "6,6",
        "--schedule",
    ]);
    assert!(ok);
    assert!(stdout.contains("FEASIBLE") || stdout.contains("no schedule exists"));

    std::fs::remove_file(&trace).ok();
}
