//! End-to-end crash-recovery tests: spawn the built `mcp` binary with
//! the `MCP_CHAOS` fault-plan hook and check the recovery contract from
//! the outside — atomic checkpoint writes under simulated crashes,
//! corrupt resume files degrading to warn + fresh start, and `--chaos`
//! fuzz reports staying byte-identical at every `--jobs` level.

use std::process::Command;

fn mcp_env(args: &[&str], chaos: Option<&str>) -> (Option<i32>, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mcp"));
    cmd.args(args);
    match chaos {
        Some(plan) => cmd.env("MCP_CHAOS", plan),
        None => cmd.env_remove("MCP_CHAOS"),
    };
    let out = cmd.output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn mcp(args: &[&str]) -> (Option<i32>, String, String) {
    mcp_env(args, None)
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("mcp_chaos_e2e_{}_{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn gen_trace(name: &str) -> String {
    let trace = tmp(name);
    let (code, _, stderr) = mcp(&[
        "gen", "cycles", "--cores", "2", "--k", "4", "--n", "10", "--out", &trace,
    ]);
    assert_eq!(code, Some(0), "gen failed: {stderr}");
    trace
}

#[test]
fn corrupt_checkpoint_degrades_to_a_warning_and_a_fresh_full_run() {
    let trace = gen_trace("corrupt_resume.json");
    let (code, reference, _) = mcp(&["opt", "--trace", &trace, "--k", "4", "--tau", "1"]);
    assert_eq!(code, Some(0));

    // Garbage where the resume snapshot should be: the run must warn,
    // remove the file, and still produce the exact reference answer.
    let ckpt = tmp("corrupt_resume.ckpt");
    std::fs::write(&ckpt, b"MCPK this is not a checkpoint").unwrap();
    let (code, stdout, stderr) = mcp(&[
        "opt",
        "--trace",
        &trace,
        "--k",
        "4",
        "--tau",
        "1",
        "--deadline",
        "5m",
        "--checkpoint",
        &ckpt,
    ]);
    assert_eq!(code, Some(0), "recovery must complete: {stderr}");
    assert_eq!(stdout, reference, "fresh start must match the reference");
    assert!(
        stderr.contains("warning: ignoring checkpoint"),
        "must warn about the corrupt file: {stderr}"
    );
    assert!(
        !std::path::Path::new(&ckpt).exists(),
        "the unusable checkpoint must be removed"
    );
    std::fs::remove_file(&trace).ok();
}

#[test]
fn simulated_crash_mid_write_never_leaves_a_half_written_checkpoint() {
    let trace = gen_trace("crash_write.json");
    let ckpt = tmp("crash_write.ckpt");
    // Every write attempt fails forever (rate 1000‰, unbounded
    // consecutive faults): the save must error out, and the target path
    // must hold *nothing* — no torn prefix, no temp litter.
    let (code, _, stderr) = mcp_env(
        &[
            "opt",
            "--trace",
            &trace,
            "--k",
            "4",
            "--tau",
            "1",
            "--deadline",
            "0s",
            "--checkpoint",
            &ckpt,
        ],
        Some("7:1000,0,0,4294967295"),
    );
    assert_eq!(code, Some(1), "crashed save must be an error: {stderr}");
    assert!(stderr.contains("saving checkpoint"), "{stderr}");
    assert!(
        !std::path::Path::new(&ckpt).exists(),
        "no half-written file may appear at the target"
    );
    assert!(
        !std::path::Path::new(&format!("{ckpt}.tmp")).exists(),
        "no temp sibling may be left behind"
    );
    std::fs::remove_file(&trace).ok();
}

#[test]
fn bounded_write_faults_are_retried_and_the_resume_chain_completes() {
    let trace = gen_trace("bounded_faults.json");
    let (code, reference, _) = mcp(&["opt", "--trace", &trace, "--k", "4", "--tau", "1"]);
    assert_eq!(code, Some(0));

    // A bounded plan (2 consecutive faults max, 4 IO attempts): the
    // truncated run's save survives injected failures.
    let ckpt = tmp("bounded_faults.ckpt");
    let (code, _, stderr) = mcp_env(
        &[
            "opt",
            "--trace",
            &trace,
            "--k",
            "4",
            "--tau",
            "1",
            "--deadline",
            "0s",
            "--checkpoint",
            &ckpt,
        ],
        Some("9:1000,200,0,2"),
    );
    assert_eq!(code, Some(3), "truncated run must still exit 3: {stderr}");
    assert!(
        std::path::Path::new(&ckpt).exists(),
        "the bounded plan cannot defeat the retry loop: {stderr}"
    );

    // Resume (still under injected read faults) and reach the exact
    // reference answer; the checkpoint is consumed.
    let (code, resumed, stderr) = mcp_env(
        &[
            "opt",
            "--trace",
            &trace,
            "--k",
            "4",
            "--tau",
            "1",
            "--deadline",
            "5m",
            "--checkpoint",
            &ckpt,
        ],
        Some("9:1000,200,0,2"),
    );
    assert_eq!(code, Some(0), "resume must complete: {stderr}");
    assert_eq!(resumed, reference, "faulted chain must match the reference");
    assert!(!std::path::Path::new(&ckpt).exists());
    std::fs::remove_file(&trace).ok();
}

#[test]
fn chaos_fuzz_reports_are_byte_identical_at_every_jobs_level() {
    let corpus = tmp("chaos_fuzz_corpus");
    let base = [
        "fuzz",
        "--chaos",
        "--instances",
        "8",
        "--seed",
        "0xC5_2011_15",
        "--corpus",
        &corpus,
    ];
    let mut reference = None;
    for jobs in ["1", "2", "4"] {
        let mut args = base.to_vec();
        args.extend(["--jobs", jobs]);
        let (code, stdout, stderr) = mcp(&args);
        assert_eq!(code, Some(0), "chaos fuzz must be clean: {stderr}");
        assert!(stdout.contains("[chaos]"), "{stdout}");
        assert!(stdout.contains("divergences:          0"), "{stdout}");
        match &reference {
            None => reference = Some(stdout),
            Some(first) => assert_eq!(&stdout, first, "jobs={jobs} diverged"),
        }
    }
}

#[test]
fn chaos_torture_smoke_is_clean() {
    let (code, stdout, stderr) = mcp(&["chaos", "--instances", "1", "--bits", "8", "--seed", "3"]);
    assert_eq!(code, Some(0), "torture run must be clean: {stderr}");
    assert!(stdout.contains("violations:           0"), "{stdout}");
}
