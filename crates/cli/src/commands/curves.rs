//! `mcp curves` — per-core LRU and OPT miss curves.
//!
//! ```text
//! mcp curves --trace w.json --max-k 16 [--core N]
//! ```

use super::{load_trace, CliError};
use crate::args::Args;
use mcp_analysis::report::Table;
use mcp_offline::{lru_curve, opt_curve};

/// Run `mcp curves`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let workload = load_trace(args.require("trace")?)?;
    let max_k: usize = args.parse_or("max-k", 8usize)?;
    let only: Option<usize> = match args.get("core") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::Other(format!("bad --core {v:?}")))?,
        ),
    };
    let mut columns = vec!["core".to_string(), "policy".to_string()];
    columns.extend((1..=max_k).map(|k| format!("k={k}")));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new("per-core miss curves (fault counts)", &col_refs);
    let cores: Vec<usize> = (0..workload.num_cores())
        .filter(|&core| only.map(|c| c == core).unwrap_or(true))
        .collect();
    let curves = mcp_exec::Pool::global().par_map(&cores, |_, &core| {
        let seq = workload.sequence(core);
        (lru_curve(seq, max_k), opt_curve(seq, max_k))
    });
    for (&core, (lru, opt)) in cores.iter().zip(&curves) {
        let mut lru_row = vec![core.to_string(), "LRU".to_string()];
        lru_row.extend(lru.iter().map(|f| f.to_string()));
        table.row(lru_row);
        let mut opt_row = vec![String::new(), "OPT".to_string()];
        opt_row.extend(opt.iter().map(|f| f.to_string()));
        table.row(opt_row);
    }
    Ok(table.to_text())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use mcp_core::Workload;

    #[test]
    fn prints_both_curves() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_curves_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2, 3, 1, 2, 3], vec![9, 9, 9]]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let a = Args::parse(
            format!("curves --trace {path} --max-k 4")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("LRU") && out.contains("OPT") && out.contains("k=4"));
        // Core filter.
        let a = Args::parse(
            format!("curves --trace {path} --max-k 2 --core 1")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let out = run(&a).unwrap();
        assert!(
            !out.contains("\n  0"),
            "core 0 must be filtered out:\n{out}"
        );
        std::fs::remove_file(&path).ok();
    }
}
