//! `mcp blast` — a load-generating client for `mcp serve`.
//!
//! ```text
//! mcp blast --connect unix:/tmp/mcp.sock --cores 4 --n 100000 --seed 7
//! ```
//!
//! Streams seeded `(core, page)` requests in length-prefixed frames
//! (round-robin over `--cores`), then an all-cores close frame unless
//! `--no-close` is given (use `--no-close` when several blasters feed one
//! server and a final one ends the stream).

use super::CliError;
use crate::args::{ArgError, Args};
use mcp_serve::{write_frame, Frame};
use std::io::{BufWriter, Write};

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `mcp blast`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let endpoint = args.require("connect")?;
    let cores: u64 = args.parse_or("cores", 1u64)?.max(1);
    let n: u64 = args.parse_or("n", 10_000u64)?;
    let universe: u64 = args.parse_or("universe", 64u64)?.max(1);
    let seed: u64 = args.parse_or("seed", 1u64)?;
    let batch: usize = args.parse_or("batch", 512usize)?.max(1);

    let (scheme, addr) = endpoint.split_once(':').ok_or_else(|| {
        CliError::Args(ArgError::BadValue {
            key: "connect".into(),
            value: endpoint.into(),
            expected: "unix:PATH or tcp:HOST:PORT",
        })
    })?;
    let stream: Box<dyn Write> = match scheme {
        "unix" => Box::new(std::os::unix::net::UnixStream::connect(addr)?),
        "tcp" => Box::new(std::net::TcpStream::connect(addr)?),
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                key: "connect".into(),
                value: other.into(),
                expected: "unix:PATH or tcp:HOST:PORT",
            }))
        }
    };
    let mut out = BufWriter::new(stream);

    let mut rng = seed;
    let mut pending: Vec<(u32, u32)> = Vec::with_capacity(batch);
    for i in 0..n {
        rng = splitmix64(rng);
        pending.push(((i % cores) as u32, (rng % universe) as u32));
        if pending.len() == batch {
            write_frame(&mut out, &Frame::Reqs(std::mem::take(&mut pending)))?;
        }
    }
    if !pending.is_empty() {
        write_frame(&mut out, &Frame::Reqs(pending))?;
    }
    if !args.flag("no-close") {
        write_frame(&mut out, &Frame::Close(Vec::new()))?;
    }
    out.flush()?;
    Ok(format!(
        "blasted {n} requests over {cores} core(s) to {endpoint}\n"
    ))
}
