//! `mcp tournament` — enumerate a declarative strategy × workload × K × τ
//! grid, run every cell on the `mcp-batch` engine, and report regret and
//! pairwise-dominance tables.
//!
//! ```text
//! mcp tournament [--families lru,clock,…] [--workloads zipf-shared,drift,…]
//!                [--k 8,16] [--tau 0,4] [--cores 4] [--n 2000]
//!                [--capacity K0[,K@T]…] [--seeds 3] [--seed S] [--universe 64]
//!                [--jobs N] [--json] [--no-crosscheck] [--deadline DUR]
//! ```
//!
//! A *group* is one `(workload instance, K, τ)` combination; every family
//! competes on every group, and `(group × family)` is a cell. Unless
//! `--no-crosscheck` is given, a seeded sample of cells is re-run on a
//! fresh per-run `Simulator` and compared bit-for-bit against the batch
//! results; any mismatch is a hard error (exit 1). Output is identical at
//! every `--jobs` level.

use super::{budget_from, capacity_from, CliError};
use crate::args::{ArgError, Args};
use crate::commands::fuzz::parse_seed;
use mcp_analysis::{grid2, grid3, tournament_report, TournamentOutcome};
use mcp_batch::{
    run_cell_reference, run_cells_quarantined, BatchError, CellSpec, WorkloadKind, WorkloadSpec,
};
use mcp_core::Budget;
use mcp_exec::derive_seed;
use mcp_oracle::FAMILIES;

/// Families raced when `--families` is not given: the six dense-engine
/// eviction families (any registry family may be requested explicitly).
const DEFAULT_FAMILIES: &str = "lru,fifo,clock,lfu,mru,fwf";
/// Workload kinds raced when `--workloads` is not given.
const DEFAULT_WORKLOADS: &str = "uniform,zipf,zipf-shared,phased,drift";
/// Cross-check sample size (capped at the cell count).
const CROSSCHECK_SAMPLES: usize = 16;
/// Per-cell attempt budget: strictly above the default fault plan's
/// `max_consecutive`, so injected faults always clear and only cells
/// that fail deterministically are quarantined.
const CELL_ATTEMPTS: u32 = 4;

fn comma_list(args: &Args, key: &str, default: &str) -> Vec<String> {
    args.get(key)
        .unwrap_or(default)
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn check_deadline(budget: &Budget, stage: &str) -> Result<(), CliError> {
    budget
        .check(0, 0)
        .map_err(|trip| CliError::Partial(format!("tournament stopped during {stage}: {trip}")))
}

/// Run `mcp tournament`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let budget = budget_from(args)?;
    let families = comma_list(args, "families", DEFAULT_FAMILIES);
    for name in &families {
        if !FAMILIES.contains(&name.as_str()) {
            return Err(CliError::Other(format!(
                "unknown strategy family {name:?}; known: {}",
                FAMILIES.join(", ")
            )));
        }
    }
    let kinds: Vec<WorkloadKind> = comma_list(args, "workloads", DEFAULT_WORKLOADS)
        .iter()
        .map(|name| {
            WorkloadKind::parse(name).ok_or_else(|| {
                CliError::Other(format!(
                    "unknown workload kind {name:?}; known: {}",
                    WorkloadKind::ALL
                        .iter()
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let ks = args.parse_list("k")?.unwrap_or_else(|| vec![8, 16]);
    let taus = args.parse_list("tau")?.unwrap_or_else(|| vec![0, 4]);
    let cores: usize = args.parse_or("cores", 4usize)?;
    let n: usize = args.parse_or("n", 2_000usize)?;
    let universe: u32 = args.parse_or("universe", 64u32)?;
    let seeds: u64 = args.parse_or("seeds", 3u64)?;
    let master = match args.get("seed") {
        None => 0,
        Some(text) => parse_seed(text).ok_or_else(|| {
            CliError::Args(ArgError::BadValue {
                key: "seed".to_string(),
                value: text.to_string(),
                expected: "a decimal or 0x-prefixed hex integer",
            })
        })?,
    };
    if families.is_empty() || kinds.is_empty() || ks.is_empty() || taus.is_empty() || seeds == 0 {
        return Err(CliError::Other(
            "empty tournament: need at least one family, workload, K, tau and seed".into(),
        ));
    }
    // A dynamic K(t) schedule anchors to one cache size, so it constrains
    // the K axis to a single value (checked inside capacity_from).
    let capacity = if args.get("capacity").is_some() && ks.len() != 1 {
        return Err(CliError::Other(
            "--capacity requires a single --k value (the schedule's initial capacity)".into(),
        ));
    } else {
        capacity_from(args, ks[0] as usize)?
    };

    // Workload instances: kind-major, then seed. The generator seed mixes
    // the master seed so `--seed` reshuffles every instance.
    let specs: Vec<WorkloadSpec> = grid2(&kinds, &(0..seeds).collect::<Vec<_>>())
        .into_iter()
        .map(|(kind, seed)| WorkloadSpec {
            kind,
            cores,
            len: n,
            universe,
            seed: master.wrapping_add(seed),
        })
        .collect();
    let workloads: Vec<_> = mcp_exec::Pool::global().par_map(&specs, |_, spec| spec.materialize());
    check_deadline(&budget, "workload generation")?;

    // Groups are (workload instance, K, τ); cells are group × family, the
    // family axis fastest so each group's cells are contiguous.
    let widx: Vec<usize> = (0..specs.len()).collect();
    let groups = grid3(&widx, &ks, &taus);
    let cells: Vec<CellSpec> = groups
        .iter()
        .flat_map(|&(wi, k, tau)| {
            let capacity = &capacity;
            families.iter().map(move |family| CellSpec {
                workload: wi,
                family: family.clone(),
                cache_size: k as usize,
                tau,
                seed: 0, // replaced below: randomized families get a derived seed
                capacity: capacity.clone(),
            })
        })
        .enumerate()
        .map(|(i, cell)| CellSpec {
            seed: derive_seed(master, i as u64),
            ..cell
        })
        .collect();

    let results = run_cells_quarantined(&workloads, &cells, CELL_ATTEMPTS);
    check_deadline(&budget, "the batch grid")?;

    // Recovery policy (DESIGN §13): a cell that panics on every attempt
    // is quarantined (shown as n/a, listed in a note) while the rest of
    // the grid completes; batch errors other than Inapplicable are still
    // hard failures.
    let mut quarantined: Vec<String> = Vec::new();
    let mut faults = Vec::with_capacity(groups.len());
    for (gi, _) in groups.iter().enumerate() {
        let mut row = Vec::with_capacity(families.len());
        for fi in 0..families.len() {
            let cell = gi * families.len() + fi;
            row.push(match &results[cell] {
                Ok(Ok(r)) => Some(r.total_faults()),
                Ok(Err(BatchError::Inapplicable(_))) => None,
                Ok(Err(e)) => {
                    return Err(CliError::Other(format!(
                        "cell {} ({} on {}): {e}",
                        cell,
                        cells[cell].family,
                        specs[cells[cell].workload].label()
                    )))
                }
                Err(q) => {
                    quarantined.push(format!(
                        "cell {} ({} on {}): {q}",
                        cell,
                        cells[cell].family,
                        specs[cells[cell].workload].label()
                    ));
                    None
                }
            });
        }
        faults.push(row);
    }

    // Seeded sampling cross-check: re-run a sample of cells on a fresh
    // per-run Simulator and require bit-identical results.
    let mut crosschecked = 0usize;
    if !args.flag("no-crosscheck") {
        for i in 0..CROSSCHECK_SAMPLES.min(cells.len()) {
            check_deadline(&budget, "the cross-check")?;
            let idx = (derive_seed(master, 0xC5EC + i as u64) % cells.len() as u64) as usize;
            let Ok(batch) = &results[idx] else {
                continue; // quarantined cells have nothing to compare
            };
            let reference = run_cell_reference(&workloads, &cells[idx]);
            if &reference != batch {
                return Err(CliError::Other(format!(
                    "batch/per-run divergence at cell {} ({} on {} K={} tau={}): \
                     batch {:?} vs per-run {:?}",
                    idx,
                    cells[idx].family,
                    specs[cells[idx].workload].label(),
                    cells[idx].cache_size,
                    cells[idx].tau,
                    batch.as_ref().map(|r| r.total_faults()),
                    reference.as_ref().map(|r| r.total_faults()),
                )));
            }
            crosschecked += 1;
        }
    }

    let outcome = TournamentOutcome {
        strategies: families,
        groups: groups
            .iter()
            .map(|&(wi, k, tau)| format!("{} K={k} tau={tau}", specs[wi].label()))
            .collect(),
        faults,
    };
    let mut report = tournament_report(&outcome);
    report.notes.push(format!(
        "{} cells ({} groups x {} strategies); cross-check: {}",
        cells.len(),
        outcome.groups.len(),
        outcome.strategies.len(),
        if args.flag("no-crosscheck") {
            "skipped (--no-crosscheck)".to_string()
        } else {
            format!("{crosschecked} sampled cells bit-identical to the per-run simulator")
        }
    ));
    if let Some(schedule) = &capacity {
        report
            .notes
            .push(format!("dynamic capacity K(t) = {schedule}"));
    }
    if !quarantined.is_empty() {
        report.notes.push(format!(
            "{} cells quarantined after repeated failures: {}",
            quarantined.len(),
            quarantined.join("; ")
        ));
    }
    if args.flag("json") {
        Ok(report.to_json())
    } else {
        Ok(report.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tournament(line: &str) -> Result<String, CliError> {
        run(&Args::parse(line.split_whitespace().map(String::from)).unwrap())
    }

    const TINY: &str = "tournament --families lru,fifo --workloads uniform,zipf-shared \
                        --k 4 --tau 0,2 --cores 2 --n 60 --seeds 2 --universe 16";

    #[test]
    fn a_tiny_grid_reports_every_group() {
        let out = tournament(TINY).unwrap();
        // 2 kinds x 2 seeds x 1 K x 2 tau = 8 groups, 16 cells.
        assert!(out.contains("16 cells (8 groups x 2 strategies)"), "{out}");
        assert!(out.contains("pairwise dominance"), "{out}");
        assert!(out.contains("uniform/s0 K=4 tau=0"), "{out}");
    }

    #[test]
    fn json_output_is_deterministic_across_jobs_levels() {
        let line = format!("{TINY} --json");
        let reference = tournament(&line).unwrap();
        assert!(reference.starts_with('{'), "{reference}");
        for jobs in [1usize, 2, 4] {
            mcp_exec::set_jobs(Some(jobs));
            assert_eq!(tournament(&line).unwrap(), reference, "jobs={jobs}");
        }
        mcp_exec::set_jobs(None);
    }

    #[test]
    fn no_crosscheck_skips_sampling_but_keeps_results() {
        let out = tournament(&format!("{TINY} --no-crosscheck")).unwrap();
        assert!(out.contains("skipped (--no-crosscheck)"), "{out}");
    }

    #[test]
    fn inapplicable_families_show_as_na() {
        // sacrifice needs disjoint cores; zipf-shared overlaps.
        let out = tournament(
            "tournament --families lru,sacrifice --workloads zipf-shared \
             --k 4 --tau 0 --cores 2 --n 40 --seeds 1 --universe 16",
        )
        .unwrap();
        assert!(out.contains("n/a"), "{out}");
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(tournament("tournament --families nope").is_err());
        assert!(tournament("tournament --workloads nope").is_err());
        assert!(tournament("tournament --seeds 0").is_err());
        assert!(tournament("tournament --seed nope").is_err());
    }
}
