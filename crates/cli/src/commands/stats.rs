//! `mcp stats` — characterize a workload trace: per-core reuse behaviour
//! and working-set curves, the quantities that predict cache behaviour.
//!
//! ```text
//! mcp stats --trace w.json
//! ```

use super::{load_trace, CliError};
use crate::args::Args;
use mcp_analysis::report::Table;
use mcp_workloads::stats::profile;

/// Run `mcp stats`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let workload = load_trace(args.require("trace")?)?;
    let profiles = profile(&workload);
    let mut table = Table::new(
        format!(
            "workload profile: p = {}, n = {}, universe = {}, disjoint = {}",
            workload.num_cores(),
            workload.total_len(),
            workload.universe_size(),
            workload.is_disjoint()
        ),
        &[
            "core",
            "requests",
            "distinct",
            "reuse %",
            "median reuse dist",
            "WS(8)",
            "WS(64)",
            "WS(512)",
        ],
    );
    for (core, p) in profiles.iter().enumerate() {
        table.row(vec![
            core.to_string(),
            p.requests.to_string(),
            p.distinct.to_string(),
            format!("{:.1}%", 100.0 * p.reuse_fraction),
            p.median_reuse
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}", p.working_set[0]),
            format!("{:.1}", p.working_set[1]),
            format!("{:.1}", p.working_set[2]),
        ]);
    }
    Ok(table.to_text())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use mcp_core::Workload;

    #[test]
    fn profiles_a_trace() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_stats_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2, 1, 2, 1, 2], vec![9, 8, 7, 6, 5, 4]]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let a = Args::parse(
            format!("stats --trace {path}")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("disjoint = true"));
        assert!(out.contains("66.7%"), "loop core reuses 4/6:\n{out}");
        assert!(out.contains(" -"), "scan core has no reuse:\n{out}");
        std::fs::remove_file(&path).ok();
    }
}
