//! `mcp gen <kind>` — generate a workload trace.
//!
//! ```text
//! mcp gen uniform --cores 4 --n 1000 --universe 64 --seed 1 --out w.json
//! mcp gen zipf    --cores 2 --n 500 --universe 128 --alpha 0.9 --out w.json
//! mcp gen phased  --cores 2 --n 800 --set 12 --phase 100 --out w.json
//! mcp gen cycles  --cores 2 --n 400 --k 4 --out w.json        # Lemma 4
//! mcp gen graph   --cores 2 --n 600 --shape grid --rows 8 --cols 8 --stay 0.3 --out w.json
//! mcp gen mixed   --n 1000 --out w.json                        # 4 personalities
//! ```
//!
//! `--text` writes the compact line format instead of JSON.

use super::CliError;
use crate::args::Args;
use mcp_core::Workload;
use mcp_workloads::{
    graph_walks, lemma4_cyclic, multiprogrammed, phased, uniform, zipf, AccessGraph, CorePattern,
};
use std::path::Path;

/// Run `mcp gen`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let kind = args.positional.first().map(String::as_str).ok_or_else(|| {
        CliError::Other("gen needs a kind: uniform|zipf|phased|cycles|graph|mixed".into())
    })?;
    let cores: usize = args.parse_or("cores", 2usize)?;
    let n: usize = args.parse_or("n", 1000usize)?;
    let seed: u64 = args.parse_or("seed", 42u64)?;

    let workload: Workload = match kind {
        "uniform" => {
            let universe: u32 = args.parse_or("universe", 64u32)?;
            uniform(cores, n, universe, seed)
        }
        "zipf" => {
            let universe: u32 = args.parse_or("universe", 128u32)?;
            let alpha: f64 = args.parse_or("alpha", 0.9f64)?;
            zipf(cores, n, universe, alpha, seed)
        }
        "phased" => {
            let set: u32 = args.parse_or("set", 12u32)?;
            let phase: usize = args.parse_or("phase", 100usize)?;
            phased(cores, n, set, phase, seed)
        }
        "cycles" => {
            let k: usize = args.parse_or("k", cores * cores)?;
            if !k.is_multiple_of(cores) {
                return Err(CliError::Other(format!(
                    "--k {k} must be divisible by --cores {cores}"
                )));
            }
            lemma4_cyclic(cores, k, n)
        }
        "graph" => {
            let shape = args.get("shape").unwrap_or("cycle");
            let size: u32 = args.parse_or("size", 16u32)?;
            let stay: f64 = args.parse_or("stay", 0.3f64)?;
            let graph = match shape {
                "cycle" => AccessGraph::cycle(size),
                "path" => AccessGraph::path(size),
                "tree" => AccessGraph::binary_tree(size),
                "grid" => {
                    let rows: u32 = args.parse_or("rows", 8u32)?;
                    let cols: u32 = args.parse_or("cols", 8u32)?;
                    AccessGraph::grid(rows, cols)
                }
                other => return Err(CliError::Other(format!("unknown graph shape {other:?}"))),
            };
            let graphs: Vec<AccessGraph> = (0..cores).map(|_| graph.clone()).collect();
            graph_walks(&graphs, n, stay, seed)
        }
        "mixed" => multiprogrammed(
            &[
                CorePattern::Scan {
                    universe: (n / 4) as u32,
                },
                CorePattern::Loop { len: 6 },
                CorePattern::Zipf {
                    universe: 64,
                    alpha: 1.0,
                },
                CorePattern::Phased {
                    set_size: 12,
                    phase_len: n / 10 + 1,
                    shift: 8,
                },
            ],
            n,
            seed,
        ),
        other => {
            return Err(CliError::Other(format!(
                "unknown kind {other:?}; try uniform|zipf|phased|cycles|graph|mixed"
            )))
        }
    };

    let out = args.require("out")?;
    if args.flag("text") {
        let mut buf = Vec::new();
        mcp_workloads::write_text(&workload, &mut buf)?;
        std::fs::write(out, buf)?;
    } else {
        mcp_workloads::save_json(&workload, Path::new(out))?;
    }
    Ok(format!(
        "wrote {kind} workload: p = {}, n = {} requests, {} distinct pages -> {out}\n",
        workload.num_cores(),
        workload.total_len(),
        workload.universe_size(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("mcp_cli_gen_{}_{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn generates_and_roundtrips_every_kind() {
        for (kind, extra) in [
            ("uniform", ""),
            ("zipf", "--alpha 1.1"),
            ("phased", "--set 6 --phase 20"),
            ("cycles", "--k 4"),
            ("graph", "--shape tree --size 15"),
            ("mixed", ""),
        ] {
            let out = tmp(&format!("{kind}.json"));
            let a = parse(&format!("gen {kind} --cores 2 --n 60 {extra} --out {out}"));
            let msg = run(&a).unwrap();
            assert!(msg.contains(kind), "{msg}");
            let w = super::super::load_trace(&out).unwrap();
            assert_eq!(w.total_len(), if kind == "mixed" { 240 } else { 120 });
            std::fs::remove_file(&out).ok();
        }
    }

    #[test]
    fn text_output_roundtrips() {
        let out = tmp("t.trace");
        let a = parse(&format!("gen uniform --cores 2 --n 30 --out {out} --text"));
        run(&a).unwrap();
        let w = super::super::load_trace(&out).unwrap();
        assert_eq!(w.total_len(), 60);
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn rejects_unknown_kind_and_bad_divisibility() {
        assert!(run(&parse("gen nope --out /tmp/x.json")).is_err());
        assert!(run(&parse("gen cycles --cores 3 --k 4 --out /tmp/x.json")).is_err());
        assert!(run(&parse("gen")).is_err());
    }
}
