//! `mcp pif` — decide PARTIAL-INDIVIDUAL-FAULTS (Algorithm 2).
//!
//! ```text
//! mcp pif --trace w.json --k 3 --tau 1 --at 20 --bounds 4,5
//!         [--deadline DUR] [--checkpoint FILE] [--stats] [--json]
//! ```
//!
//! With `--deadline`, a run that exceeds the budget exits 3 reporting how
//! many timesteps were decided; with `--checkpoint FILE` the live layer
//! is also saved there, and re-running the same command resumes from the
//! snapshot (the file is removed on completion). `--stats` prints DP
//! engine statistics (peak live states, vector expansions, peak arena
//! bytes, dedup-table load factor, states/sec) to stderr on the decision
//! path; `--json` makes that line machine-readable.

use super::{budget_from, emit_stats, load_instance, CliError};
use crate::args::Args;
use mcp_offline::{
    pif_decide_governed_with_stats, pif_decide_with_stats, pif_witness, PifCheckpoint, PifOptions,
    PifOutcome,
};

/// Run `mcp pif`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let (workload, cfg) = load_instance(args)?;
    let checkpoint: u64 = args.parse_required("at")?;
    let bounds = args
        .parse_list("bounds")?
        .ok_or_else(|| CliError::Other("missing required option --bounds a,b,…".into()))?;
    if bounds.len() != workload.num_cores() {
        return Err(CliError::Other(format!(
            "--bounds has {} entries for {} cores",
            bounds.len(),
            workload.num_cores()
        )));
    }
    let honest_only = args
        .get("transitions")
        .map(|t| t == "honest")
        .unwrap_or(false);
    let max_expansions: usize = args.parse_or("max-expansions", 20_000_000usize)?;
    let opts = PifOptions {
        full_transitions: !honest_only,
        max_expansions,
        ..Default::default()
    };
    let mut out;
    if args.flag("schedule") {
        let witness = pif_witness(&workload, cfg, checkpoint, &bounds, opts)
            .map_err(|e| CliError::Other(format!("{e} (the DP is exponential in K and p)")))?;
        match witness {
            None => {
                out = format!(
                    "PIF(t = {checkpoint}, b = {bounds:?}): infeasible — no schedule exists\n"
                );
            }
            Some(schedule) => {
                out =
                    format!("PIF(t = {checkpoint}, b = {bounds:?}): FEASIBLE; witness schedule:\n");
                let mut decisions: Vec<_> = schedule.decisions.into_iter().collect();
                decisions.sort_by_key(|((core, idx), _)| (*core, *idx));
                for ((core, idx), decision) in decisions {
                    out.push_str(&format!("  core {core} request #{idx}: {decision:?}\n"));
                }
            }
        }
    } else {
        let too_large = |e: mcp_offline::DpError| {
            CliError::Other(format!("{e} (the DP is exponential in K and p)"))
        };
        let want_stats = args.flag("stats") || args.flag("json");
        let checkpoint_path = args.get("checkpoint").map(std::path::PathBuf::from);
        let feasible = if args.get("deadline").is_some() || checkpoint_path.is_some() {
            let budget = budget_from(args)?.with_max_states(opts.max_expansions);
            // Recovery policy: a corrupt or stale resume file warns and
            // starts fresh instead of erroring out (DESIGN §13).
            let resume: Option<PifCheckpoint> = match &checkpoint_path {
                Some(p) => {
                    let expected =
                        mcp_offline::pif_fingerprint(&workload, cfg, checkpoint, &bounds, &opts)
                            .map_err(too_large)?;
                    super::load_resume(p, expected, PifCheckpoint::load, |ck| ck.fingerprint)?
                }
                None => None,
            };
            let resumed = resume.is_some();
            let t0 = std::time::Instant::now();
            let (outcome, stats) = pif_decide_governed_with_stats(
                &workload,
                cfg,
                checkpoint,
                &bounds,
                opts,
                &budget,
                resume.as_ref(),
            )
            .map_err(too_large)?;
            if want_stats {
                emit_stats("pif", &stats, t0.elapsed(), args.flag("json"));
            }
            match outcome {
                PifOutcome::Decided(ans) => {
                    if resumed {
                        if let Some(p) = &checkpoint_path {
                            std::fs::remove_file(p).ok();
                        }
                    }
                    ans
                }
                PifOutcome::Truncated(t) => {
                    let mut msg = format!(
                        "pif truncated ({:?}) after serving {} of {checkpoint} timesteps \
                         ({} live states); feasibility still open",
                        t.reason, t.t_done, t.live_states
                    );
                    match &checkpoint_path {
                        Some(p) => {
                            t.checkpoint
                                .save(p)
                                .map_err(|e| CliError::Other(format!("saving checkpoint: {e}")))?;
                            msg.push_str(&format!(
                                "; checkpoint saved to {} (re-run the same command to resume)",
                                p.display()
                            ));
                        }
                        None => msg.push_str("; pass --checkpoint FILE to make the run resumable"),
                    }
                    return Err(CliError::Partial(msg));
                }
            }
        } else {
            let t0 = std::time::Instant::now();
            let (ans, stats) = pif_decide_with_stats(&workload, cfg, checkpoint, &bounds, opts)
                .map_err(too_large)?;
            if want_stats {
                emit_stats("pif", &stats, t0.elapsed(), args.flag("json"));
            }
            ans
        };
        out = format!(
            "PIF(t = {checkpoint}, b = {bounds:?}) on p = {}, K = {}, tau = {}: {}\n",
            workload.num_cores(),
            cfg.cache_size,
            cfg.tau,
            if feasible { "FEASIBLE" } else { "infeasible" }
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use mcp_core::Workload;

    fn setup() -> String {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_pif_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2, 1, 2], vec![9, 8, 9, 8]]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        path
    }

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn decides_both_ways() {
        let path = setup();
        let yes = run(&parse(&format!(
            "pif --trace {path} --k 3 --tau 1 --at 30 --bounds 8,8"
        )))
        .unwrap();
        assert!(yes.contains("FEASIBLE"));
        let no = run(&parse(&format!(
            "pif --trace {path} --k 3 --tau 1 --at 30 --bounds 0,0"
        )))
        .unwrap();
        assert!(no.contains("infeasible"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn witness_schedule_is_printed() {
        let path = setup();
        let out = run(&parse(&format!(
            "pif --trace {path} --k 3 --tau 1 --at 30 --bounds 8,8 --schedule"
        )))
        .unwrap();
        assert!(out.contains("witness schedule"));
        assert!(out.contains("core 0 request #0"));
        let no = run(&parse(&format!(
            "pif --trace {path} --k 3 --tau 1 --at 30 --bounds 0,0 --schedule"
        )))
        .unwrap();
        assert!(no.contains("no schedule exists"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_flags_do_not_disturb_the_decision() {
        let path = setup();
        let plain = run(&parse(&format!(
            "pif --trace {path} --k 3 --tau 1 --at 30 --bounds 8,8"
        )))
        .unwrap();
        let with_stats = run(&parse(&format!(
            "pif --trace {path} --k 3 --tau 1 --at 30 --bounds 8,8 --stats --json"
        )))
        .unwrap();
        assert_eq!(with_stats, plain);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validates_bounds_arity() {
        let path = setup();
        let err = run(&parse(&format!(
            "pif --trace {path} --k 3 --at 10 --bounds 1,2,3"
        )))
        .unwrap_err()
        .to_string();
        assert!(err.contains("3 entries for 2 cores"));
        std::fs::remove_file(&path).ok();
    }
}
