//! `mcp fuzz` — the seeded differential fuzz harness: the event engine
//! vs. the scan-based tick engine (result + step-trace equality) vs. the
//! naive reference over every strategy family, plus metamorphic
//! invariants and exhaustive-oracle cross-checks of the offline DPs.
//!
//! ```text
//! mcp fuzz --instances 256 [--seed 0xC5_2011_12] [--jobs 4]
//!          [--corpus tests/corpus] [--families lru,clock,mimic]
//!          [--profile mixed|large-tau|batch|capacity]
//! ```
//!
//! Output is deterministic for a given seed at every `--jobs` level.
//! A divergence is shrunk to a minimal instance, written as a replayable
//! fixture under the corpus directory, and reported with the family name;
//! the process then exits non-zero.

use super::CliError;
use crate::args::{ArgError, Args};
use mcp_oracle::{run_fuzz, FuzzOptions, FuzzProfile, FAMILIES};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Parse a seed that may be decimal or `0x`-prefixed hex, with `_`
/// separators allowed in either (e.g. `0xC5_2011_12`).
pub fn parse_seed(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        cleaned.parse().ok()
    }
}

/// Run `mcp fuzz`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let instances: usize = args.parse_or("instances", 64usize)?;
    let seed = match args.get("seed") {
        None => 0,
        Some(text) => parse_seed(text).ok_or_else(|| {
            CliError::Args(ArgError::BadValue {
                key: "seed".to_string(),
                value: text.to_string(),
                expected: "a decimal or 0x-prefixed hex integer",
            })
        })?,
    };
    let corpus_dir = PathBuf::from(args.get("corpus").unwrap_or("tests/corpus"));
    let families: Vec<String> = match args.get("families") {
        Some(list) => {
            let named: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
            for name in &named {
                if !FAMILIES.contains(&name.as_str()) {
                    return Err(CliError::Other(format!(
                        "unknown strategy family {name:?}; known: {}",
                        FAMILIES.join(", ")
                    )));
                }
            }
            named
        }
        None => FAMILIES.iter().map(|s| s.to_string()).collect(),
    };

    let profile = match args.get("profile") {
        None => FuzzProfile::Mixed,
        Some(text) => FuzzProfile::parse(text).ok_or_else(|| {
            CliError::Args(ArgError::BadValue {
                key: "profile".to_string(),
                value: text.to_string(),
                expected: "mixed, large-tau, batch or capacity",
            })
        })?,
    };

    let chaos = args.flag("chaos");
    let options = FuzzOptions {
        instances,
        seed,
        corpus_dir,
        families,
        profile,
        chaos,
    };
    // --chaos: arm a bounded fault plan for the run (unless the caller
    // already armed one via MCP_CHAOS) and give every instance a retry
    // budget that clears injected faults; real divergences still fail
    // every attempt and are reported as quarantined.
    let _guard = if chaos && !mcp_chaos::armed() {
        let chaos_seed = match args.get("chaos-seed") {
            None => seed,
            Some(text) => parse_seed(text).ok_or_else(|| {
                CliError::Args(ArgError::BadValue {
                    key: "chaos-seed".to_string(),
                    value: text.to_string(),
                    expected: "a decimal or 0x-prefixed hex integer",
                })
            })?,
        };
        Some(mcp_chaos::arm_scoped(mcp_chaos::FaultPlan::seeded(
            chaos_seed,
        )))
    } else {
        None
    };
    let report = run_fuzz(&options);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fuzz: {} instances, seed {:#x}, {} families{}",
        instances,
        seed,
        options.families.len(),
        if chaos { " [chaos]" } else { "" }
    );
    let _ = writeln!(
        out,
        "  engine comparisons:   {} ({} instances clean)",
        report.comparisons, report.passed
    );
    let _ = writeln!(out, "  metamorphic checks:   {}", report.metamorphic_checks);
    let _ = writeln!(out, "  dp oracle checks:     {}", report.dp_checks);

    if report.clean() {
        let _ = writeln!(out, "  divergences:          0");
        Ok(out)
    } else {
        let _ = writeln!(out, "  divergences:          {}", report.divergences.len());
        for d in &report.divergences {
            let _ = writeln!(out, "{}", d.message);
        }
        Err(CliError::Other(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_parse_in_both_bases() {
        assert_eq!(parse_seed("0"), Some(0));
        assert_eq!(parse_seed("1_000"), Some(1000));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0xC5_2011_12"), Some(0xC520_1112));
        assert_eq!(parse_seed("0XC5201112"), Some(0xC520_1112));
        assert_eq!(parse_seed("nope"), None);
        assert_eq!(parse_seed("0x"), None);
    }

    #[test]
    fn a_tiny_clean_run_reports_zero_divergences() {
        let dir = std::env::temp_dir().join("mcp-cli-fuzz-test");
        let args = Args::parse(
            [
                "fuzz",
                "--instances",
                "2",
                "--seed",
                "3",
                "--corpus",
                dir.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("divergences:          0"), "{out}");
    }

    #[test]
    fn capacity_profile_runs_clean() {
        let dir = std::env::temp_dir().join("mcp-cli-fuzz-cap-test");
        let args = Args::parse(
            [
                "fuzz",
                "--instances",
                "2",
                "--seed",
                "7",
                "--profile",
                "capacity",
                "--corpus",
                dir.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("divergences:          0"), "{out}");
    }

    #[test]
    fn unknown_family_is_rejected() {
        let args = Args::parse(["fuzz", "--families", "lru,nope"].map(String::from)).unwrap();
        assert!(run(&args).is_err());
    }
}
