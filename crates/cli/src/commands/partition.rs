//! `mcp partition` — compute the optimal static cache partition for a
//! disjoint workload from per-core miss curves.
//!
//! ```text
//! mcp partition --trace w.json --k 32 [--policy lru|opt] [--tau T]
//! ```

use super::{load_trace, CliError};
use crate::args::Args;
use mcp_offline::{optimal_static_partition, PartPolicy};

/// Run `mcp partition`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let workload = load_trace(args.require("trace")?)?;
    let k: usize = args.parse_required("k")?;
    if k < workload.num_cores() {
        return Err(CliError::Other(format!(
            "K = {k} is smaller than p = {} (every core needs a cell)",
            workload.num_cores()
        )));
    }
    let policy = match args.get("policy").unwrap_or("lru") {
        "lru" => PartPolicy::Lru,
        "opt" => PartPolicy::Opt,
        other => {
            return Err(CliError::Other(format!(
                "unknown --policy {other:?}; lru or opt"
            )))
        }
    };
    if !workload.is_disjoint() {
        return Err(CliError::Other(
            "the workload shares pages between cores; static-partition planning assumes \
             disjoint per-core working sets"
                .into(),
        ));
    }
    let best = optimal_static_partition(&workload, k, policy);
    let mut out = format!(
        "optimal static partition for per-part {}: {}\n",
        match policy {
            PartPolicy::Lru => "LRU",
            PartPolicy::Opt => "OPT",
        },
        best.partition
    );
    out.push_str(&format!("predicted total faults: {}\n", best.faults));
    for (core, f) in best.per_core.iter().enumerate() {
        out.push_str(&format!(
            "  core {core}: {} cells, {f} faults / {} requests\n",
            best.partition.size(core),
            workload.len(core)
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use mcp_core::Workload;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn plans_and_validates() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_part_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let c0: Vec<u32> = (0..40).map(|i| i % 4).collect();
        let c1: Vec<u32> = vec![100; 40];
        let w = Workload::from_u32([c0, c1]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let out = run(&parse(&format!(
            "partition --trace {path} --k 5 --policy opt"
        )))
        .unwrap();
        assert!(out.contains("[4,1]"), "{out}");
        assert!(out.contains("predicted total faults: 5"));
        // Errors: bad policy, K too small.
        assert!(run(&parse(&format!(
            "partition --trace {path} --k 5 --policy x"
        )))
        .is_err());
        assert!(run(&parse(&format!("partition --trace {path} --k 1"))).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_shared_pages() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_part2_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2], vec![2, 3]]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let err = run(&parse(&format!("partition --trace {path} --k 4"))).unwrap_err();
        assert!(err.to_string().contains("disjoint"));
        std::fs::remove_file(&path).ok();
    }
}
