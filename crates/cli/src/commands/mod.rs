//! Subcommand implementations. Each command is a pure function from
//! parsed [`crate::args::Args`] values to their stdout text, so the whole
//! surface is unit-testable without spawning processes.

pub mod blast;
pub mod chaos;
pub mod compare;
pub mod curves;
pub mod fuzz;
pub mod gen;
pub mod opt;
pub mod partition;
pub mod pif;
pub mod serve;
pub mod simulate;
pub mod stats;
pub mod tournament;

use crate::args::{ArgError, Args};
use mcp_core::{CacheStrategy, SimConfig, Workload};
use std::fmt;
use std::path::Path;

/// Errors any subcommand can raise.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing/validation failure.
    Args(ArgError),
    /// A malformed trace file (typed parse error, never a panic).
    Trace(String),
    /// I/O failure reading or writing traces.
    Io(std::io::Error),
    /// A governed run tripped its budget: the message carries the anytime
    /// result and where the checkpoint was saved. Exit code 3.
    Partial(String),
    /// Anything else, with a message for the user.
    Other(String),
}

impl CliError {
    /// The process exit code for this error: 2 for user input problems
    /// (bad arguments, malformed traces), 3 for budget-truncated partial
    /// runs, 1 for everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Args(_) | CliError::Trace(_) => 2,
            CliError::Partial(_) => 3,
            CliError::Io(_) | CliError::Other(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Trace(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Partial(m) => write!(f, "{m}"),
            CliError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Load a workload trace: `.json` via serde, anything else as the compact
/// text format, and `-` as text from stdin (so `mcp serve` replay logs
/// pipe straight into `mcp simulate -`). Malformed input surfaces as
/// [`CliError::Trace`] (exit 2); only genuine I/O failures (missing file,
/// permissions) are [`CliError::Io`]. Neither parser panics on corrupt
/// bytes.
pub fn load_trace(path: &str) -> Result<Workload, CliError> {
    if path == "-" {
        let stdin = std::io::stdin();
        return mcp_workloads::read_text(stdin.lock()).map_err(|e| match e {
            mcp_workloads::TextError::Io(io) => CliError::Io(io),
            parse => CliError::Trace(format!("malformed trace on stdin: {parse}")),
        });
    }
    let p = Path::new(path);
    if p.extension().map(|e| e == "json").unwrap_or(false) {
        mcp_workloads::load_json(p).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                CliError::Trace(format!("malformed trace {path}: {e}"))
            } else {
                CliError::Io(e)
            }
        })
    } else {
        let file = std::fs::File::open(p)?;
        mcp_workloads::read_text(std::io::BufReader::new(file)).map_err(|e| match e {
            mcp_workloads::TextError::Io(io) => CliError::Io(io),
            parse => CliError::Trace(format!("malformed trace {path}: {parse}")),
        })
    }
}

/// Parse `--capacity SPEC` (`K0[,K@T]…`, e.g. `8,4@100,8@200`) into a
/// dynamic capacity schedule. `None` when the option is absent; malformed
/// specs and schedules whose initial capacity disagrees with `--k` are
/// argument errors (exit 2).
pub fn capacity_from(
    args: &Args,
    cache_size: usize,
) -> Result<Option<mcp_core::CapacitySchedule>, CliError> {
    let Some(spec) = args.get("capacity") else {
        return Ok(None);
    };
    let bad = |expected: &'static str| {
        CliError::Args(ArgError::BadValue {
            key: "capacity".to_string(),
            value: spec.to_string(),
            expected,
        })
    };
    let schedule: mcp_core::CapacitySchedule = spec
        .parse()
        .map_err(|_| bad("a schedule like 8 or 8,4@100,8@200 (K0[,K@T]...)"))?;
    if schedule.initial_k() != cache_size {
        return Err(bad("a schedule whose initial capacity equals --k"));
    }
    Ok(Some(schedule))
}

/// Parse `--deadline DUR` (e.g. `30s`, `500ms`, `2m`) into a [`Budget`];
/// Ctrl-C cancellation is always honoured by governed runs.
pub fn budget_from(args: &Args) -> Result<mcp_core::Budget, CliError> {
    let mut budget = mcp_core::Budget::unlimited().with_global_cancel();
    if let Some(spec) = args.get("deadline") {
        let d = mcp_core::budget::parse_duration(spec).map_err(|_| {
            CliError::Args(ArgError::BadValue {
                key: "deadline".to_string(),
                value: spec.to_string(),
                expected: "a duration like 30s, 500ms, 2m",
            })
        })?;
        budget = budget.with_deadline(d);
    }
    Ok(budget)
}

/// Print DP engine statistics (`--stats`) to stderr, keeping stdout
/// clean for the command's result. `--json` swaps the human-readable
/// line for a single machine-readable JSON object. The throughput field
/// is 0 when the elapsed time is too small to measure.
pub fn emit_stats(
    algo: &str,
    stats: &mcp_offline::DpStats,
    elapsed: std::time::Duration,
    json: bool,
) {
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 {
        stats.states as f64 / secs
    } else {
        0.0
    };
    if json {
        eprintln!(
            "{{\"algo\":\"{algo}\",\"states\":{},\"expansions\":{},\"peak_arena_bytes\":{},\
             \"dedup_load_factor\":{:.4},\"elapsed_sec\":{:.6},\"states_per_sec\":{:.1}}}",
            stats.states,
            stats.expansions,
            stats.peak_arena_bytes,
            stats.dedup_load_factor,
            secs,
            rate
        );
    } else {
        eprintln!(
            "[stats] {algo}: {} states, {} expansions, peak arena {} bytes, \
             dedup load {:.2}, {:.0} states/sec",
            stats.states, stats.expansions, stats.peak_arena_bytes, stats.dedup_load_factor, rate
        );
    }
}

/// Read `--trace`, `--k`, `--tau` into a ready instance.
pub fn load_instance(args: &Args) -> Result<(Workload, SimConfig), CliError> {
    let trace = args.require("trace")?;
    let workload = load_trace(trace)?;
    let k: usize = args.parse_required("k")?;
    let tau: u64 = args.parse_or("tau", 0u64)?;
    let cfg = SimConfig::new(k, tau);
    cfg.validate(&workload)
        .map_err(|e| CliError::Other(e.to_string()))?;
    Ok((workload, cfg))
}

/// Load a `--checkpoint` resume file under the recovery policy
/// (DESIGN §13): a missing file starts fresh; a corrupt snapshot or one
/// whose fingerprint does not match `expected` (stale: different trace,
/// config, or options) degrades to a stderr warning and a fresh start —
/// the unusable file is removed so the next save can replace it; only
/// genuine I/O errors abort. `fingerprint_of` extracts the snapshot's
/// stored fingerprint so the staleness check happens here, before the
/// solver would fail deep inside resume.
pub fn load_resume<T>(
    path: &Path,
    expected: u64,
    load: impl FnOnce(&Path) -> Result<T, mcp_offline::CheckpointError>,
    fingerprint_of: impl FnOnce(&T) -> u64,
) -> Result<Option<T>, CliError> {
    use mcp_offline::CheckpointError as CE;
    if !path.exists() {
        return Ok(None);
    }
    let degrade = |why: String| {
        eprintln!(
            "warning: ignoring checkpoint {}: {why}; restarting from scratch",
            path.display()
        );
        let _ = std::fs::remove_file(path);
        Ok(None)
    };
    match load(path) {
        Ok(ck) => {
            let found = fingerprint_of(&ck);
            if found != expected {
                return degrade(CE::Mismatch { expected, found }.to_string());
            }
            Ok(Some(ck))
        }
        Err(CE::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(CE::Io(e)) => Err(CliError::Io(e)),
        Err(e) => degrade(e.to_string()),
    }
}

/// Build a strategy by name. Partition strategies take sizes after a
/// colon, e.g. `partition:4,2,2`; `partition:equal` splits evenly.
pub fn build_strategy(
    spec: &str,
    workload: &Workload,
    cfg: SimConfig,
) -> Result<Box<dyn CacheStrategy>, CliError> {
    use mcp_policies::*;
    let p = workload.num_cores();
    let make_partition = |tail: &str| -> Result<Partition, CliError> {
        if tail.is_empty() || tail == "equal" {
            return Ok(Partition::equal(cfg.cache_size, p));
        }
        let sizes = tail
            .split(',')
            .map(|t| t.trim().parse::<usize>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| CliError::Other(format!("bad partition sizes {tail:?}")))?;
        let part = Partition::from_sizes(sizes);
        part.validate(cfg.cache_size, p)
            .map_err(|e| CliError::Other(e.to_string()))?;
        Ok(part)
    };
    let (head, tail) = spec.split_once(':').unwrap_or((spec, ""));
    Ok(match head {
        "lru" => Box::new(shared_lru()),
        "fifo" => Box::new(shared_fifo()),
        "clock" => Box::new(Shared::new(Clock::new())),
        "lfu" => Box::new(Shared::new(Lfu::new())),
        "mru" => Box::new(Shared::new(Mru::new())),
        "fwf" => Box::new(Shared::new(Fwf::new())),
        "lru2" => Box::new(Shared::new(LruK::new(2))),
        "rand" => Box::new(Shared::new(RandomEvict::new(tail.parse().unwrap_or(0)))),
        "mark" => Box::new(Shared::new(Marking::new(MarkingTie::Lru))),
        "mark-rand" => Box::new(Shared::new(Marking::new(MarkingTie::Random(
            tail.parse().unwrap_or(0),
        )))),
        "fitf" => Box::new(SharedFitf::new()),
        "mimic" => Box::new(LruMimicPartition::new()),
        "partition" => Box::new(static_partition_lru(make_partition(tail)?)),
        "partition-opt" => Box::new(static_partition_belady(make_partition(tail)?)),
        "sacrifice" => {
            let core: usize = tail.parse().unwrap_or(p - 1);
            if core >= p {
                return Err(CliError::Other(format!(
                    "sacrifice core {core} out of range"
                )));
            }
            Box::new(SacrificeOffline::new(core))
        }
        other => {
            return Err(CliError::Other(format!(
                "unknown strategy {other:?}; try lru, fifo, clock, lfu, mru, fwf, lru2, rand, \
                 mark, mark-rand, fitf, mimic, partition[:sizes], partition-opt[:sizes], \
                 sacrifice[:core]"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Workload {
        Workload::from_u32([vec![1, 2, 1], vec![7, 8, 7]]).unwrap()
    }

    #[test]
    fn strategies_resolve_by_name() {
        let w = wl();
        let cfg = SimConfig::new(4, 1);
        for spec in [
            "lru",
            "fifo",
            "clock",
            "lfu",
            "mru",
            "fwf",
            "lru2",
            "rand",
            "rand:7",
            "mark",
            "mark-rand:3",
            "fitf",
            "mimic",
            "partition",
            "partition:2,2",
            "partition-opt",
            "sacrifice",
            "sacrifice:0",
        ] {
            let s = build_strategy(spec, &w, cfg);
            assert!(
                s.is_ok(),
                "{spec} failed: {:?}",
                s.err().map(|e| e.to_string())
            );
        }
        assert!(build_strategy("nope", &w, cfg).is_err());
        assert!(build_strategy("partition:9,9", &w, cfg).is_err());
        assert!(build_strategy("sacrifice:5", &w, cfg).is_err());
    }

    #[test]
    fn strategies_actually_run() {
        let w = wl();
        let cfg = SimConfig::new(4, 1);
        for spec in ["lru", "partition:2,2", "mimic", "fitf"] {
            let s = build_strategy(spec, &w, cfg).unwrap();
            let r = mcp_core::simulate(&w, cfg, s).unwrap();
            assert_eq!(r.total_faults() + r.total_hits(), 6);
        }
    }
}
