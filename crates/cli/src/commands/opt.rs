//! `mcp opt` — exact offline optimum via Algorithm 1 (small instances).
//!
//! ```text
//! mcp opt --trace w.json --k 3 --tau 1 [--schedule] [--max-states N]
//! ```

use super::{load_instance, CliError};
use crate::args::Args;
use mcp_offline::{ftf_dp, FtfOptions};

/// Run `mcp opt`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let (workload, cfg) = load_instance(args)?;
    let reconstruct = args.flag("schedule");
    let max_states: usize = args.parse_or("max-states", 4_000_000usize)?;
    let result = ftf_dp(
        &workload,
        cfg,
        FtfOptions {
            reconstruct,
            max_states,
            ..Default::default()
        },
    )
    .map_err(|e| {
        CliError::Other(format!(
            "{e} (the DP is exponential in K and p; shrink the instance)"
        ))
    })?;

    let mut out = format!(
        "exact minimum total faults: {} ({} DP states)\n",
        result.min_faults, result.states
    );
    if let Some(schedule) = result.schedule {
        out.push_str(&format!(
            "\noptimal schedule ({} placements):\n",
            schedule.decisions.len()
        ));
        let mut decisions: Vec<_> = schedule.decisions.into_iter().collect();
        decisions.sort_by_key(|((core, idx), _)| (*core, *idx));
        for ((core, idx), decision) in decisions {
            out.push_str(&format!("  core {core} request #{idx}: {decision:?}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use mcp_core::Workload;

    #[test]
    fn computes_the_dp_optimum() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_opt_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2, 1, 2], vec![9, 8, 9, 8]]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let a = Args::parse(
            format!("opt --trace {path} --k 3 --tau 1 --schedule")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("exact minimum total faults"));
        assert!(out.contains("core 0 request #0"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn state_cap_reports_kindly() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_opt2_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let big: Vec<u32> = (0..16).map(|i| i % 8).collect();
        let w = Workload::from_u32([big.clone(), big.iter().map(|v| v + 100).collect()]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let a = Args::parse(
            format!("opt --trace {path} --k 6 --tau 2 --max-states 100")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let err = run(&a).unwrap_err().to_string();
        assert!(err.contains("shrink the instance"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
