//! `mcp opt` — exact offline optimum via Algorithm 1 (small instances).
//!
//! ```text
//! mcp opt --trace w.json --k 3 --tau 1 [--schedule] [--max-states N]
//!         [--deadline DUR] [--checkpoint FILE] [--stats] [--json]
//! ```
//!
//! With `--deadline`, a run that exceeds the budget exits 3 after
//! printing the anytime bracket `[lower_bound, incumbent]`; with
//! `--checkpoint FILE` the truncated frontier is also saved there, and
//! re-running the same command resumes from the snapshot (the file is
//! removed on completion). `--stats` prints DP engine statistics
//! (states, expansions, peak arena bytes, dedup-table load factor,
//! states/sec) to stderr; `--json` makes that line machine-readable.

use super::{budget_from, emit_stats, load_instance, CliError};
use crate::args::Args;
use mcp_core::Budget;
use mcp_offline::{ftf_dp_governed_with_stats, FtfCheckpoint, FtfOptions, FtfOutcome, FtfResult};

/// Run `mcp opt`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let (workload, cfg) = load_instance(args)?;
    let reconstruct = args.flag("schedule");
    let max_states: usize = args.parse_or("max-states", 4_000_000usize)?;
    let want_stats = args.flag("stats") || args.flag("json");
    let options = FtfOptions {
        reconstruct,
        max_states,
        ..Default::default()
    };
    let too_large = |e: mcp_offline::DpError| {
        CliError::Other(format!(
            "{e} (the DP is exponential in K and p; shrink the instance)"
        ))
    };

    let checkpoint_path = args.get("checkpoint").map(std::path::PathBuf::from);
    let governed = args.get("deadline").is_some() || checkpoint_path.is_some();
    let budget = if governed {
        budget_from(args)?.with_max_states(max_states)
    } else {
        // Same shape as the plain ftf_dp wrapper: only the state cap.
        Budget::unlimited().with_max_states(max_states)
    };
    // Recovery policy: a corrupt or stale resume file warns and starts
    // fresh instead of erroring out (DESIGN §13).
    let resume: Option<FtfCheckpoint> = match &checkpoint_path {
        Some(p) => {
            let expected =
                mcp_offline::ftf_fingerprint(&workload, cfg, &options).map_err(too_large)?;
            super::load_resume(p, expected, FtfCheckpoint::load, |ck| ck.fingerprint)?
        }
        None => None,
    };
    let resumed = resume.is_some();
    let t0 = std::time::Instant::now();
    let (outcome, stats) =
        ftf_dp_governed_with_stats(&workload, cfg, options, &budget, resume.as_ref())
            .map_err(too_large)?;
    if want_stats {
        emit_stats("ftf", &stats, t0.elapsed(), args.flag("json"));
    }
    let result: FtfResult = match outcome {
        FtfOutcome::Complete(r) => {
            if let Some(p) = &checkpoint_path {
                if resumed {
                    std::fs::remove_file(p).ok();
                }
            }
            r
        }
        FtfOutcome::Truncated(t) if governed => {
            let mut msg = format!(
                "opt truncated ({:?}) after {} states; anytime bracket: \
                 {} <= optimum <= {}",
                t.reason, t.states, t.lower_bound, t.incumbent
            );
            match &checkpoint_path {
                Some(p) => {
                    t.checkpoint
                        .save(p)
                        .map_err(|e| CliError::Other(format!("saving checkpoint: {e}")))?;
                    msg.push_str(&format!(
                        "; checkpoint saved to {} (re-run the same command to resume)",
                        p.display()
                    ));
                }
                None => msg.push_str("; pass --checkpoint FILE to make the run resumable"),
            }
            return Err(CliError::Partial(msg));
        }
        FtfOutcome::Truncated(t) => {
            // Ungoverned run over the state cap: same error as ftf_dp.
            return Err(too_large(mcp_offline::DpError::TooLarge {
                states: t.states,
                cap: max_states,
                incumbent: Some(t.incumbent),
            }));
        }
    };

    let mut out = format!(
        "exact minimum total faults: {} ({} DP states)\n",
        result.min_faults, result.states
    );
    if let Some(schedule) = result.schedule {
        out.push_str(&format!(
            "\noptimal schedule ({} placements):\n",
            schedule.decisions.len()
        ));
        let mut decisions: Vec<_> = schedule.decisions.into_iter().collect();
        decisions.sort_by_key(|((core, idx), _)| (*core, *idx));
        for ((core, idx), decision) in decisions {
            out.push_str(&format!("  core {core} request #{idx}: {decision:?}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use mcp_core::Workload;

    #[test]
    fn computes_the_dp_optimum() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_opt_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2, 1, 2], vec![9, 8, 9, 8]]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let a = Args::parse(
            format!("opt --trace {path} --k 3 --tau 1 --schedule")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("exact minimum total faults"));
        assert!(out.contains("core 0 request #0"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_flags_do_not_disturb_the_result() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_opt3_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2, 1, 2], vec![9, 8, 9, 8]]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let plain = run(&Args::parse(
            format!("opt --trace {path} --k 3 --tau 1")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap())
        .unwrap();
        for extra in ["--stats", "--stats --json"] {
            let out = run(&Args::parse(
                format!("opt --trace {path} --k 3 --tau 1 {extra}")
                    .split_whitespace()
                    .map(String::from),
            )
            .unwrap())
            .unwrap();
            assert_eq!(out, plain, "{extra} changed stdout");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn state_cap_reports_kindly() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_opt2_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let big: Vec<u32> = (0..16).map(|i| i % 8).collect();
        let w = Workload::from_u32([big.clone(), big.iter().map(|v| v + 100).collect()]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let a = Args::parse(
            format!("opt --trace {path} --k 6 --tau 2 --max-states 100")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let err = run(&a).unwrap_err().to_string();
        assert!(err.contains("shrink the instance"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
