//! `mcp simulate` — run one strategy on a trace.
//!
//! ```text
//! mcp simulate --trace w.json --k 32 --tau 4 --strategy lru
//!              [--capacity K0[,K@T]…] [--fairness] [--at T]
//! ```
//!
//! `--capacity` runs the strategy under a dynamic capacity schedule
//! `K(t)`; the schedule's initial capacity must equal `--k`. `--trace -`
//! reads the compact text format from stdin, so `mcp serve` replay logs
//! pipe straight in.

use super::{build_strategy, capacity_from, load_instance, CliError};
use crate::args::Args;
use mcp_analysis::fairness;
use mcp_analysis::report::Table;

/// Run `mcp simulate`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let (workload, cfg) = load_instance(args)?;
    let capacity = capacity_from(args, cfg.cache_size)?;
    let spec = args.get("strategy").unwrap_or("lru");
    let mut strategy = build_strategy(spec, &workload, cfg)?;
    // Prime the strategy so its display name is fully resolved (begin is
    // idempotent and will run again inside the simulator).
    mcp_core::CacheStrategy::begin(&mut strategy, &workload, &cfg);
    let name = strategy.name();
    let result = match &capacity {
        Some(schedule) => {
            mcp_core::simulate_with_capacity(&workload, cfg, schedule.clone(), strategy)
        }
        None => mcp_core::simulate(&workload, cfg, strategy),
    }
    .map_err(|e| CliError::Other(e.to_string()))?;

    let mut out = String::new();
    out.push_str(&format!(
        "{name} on p = {}, n = {}, K = {}, tau = {}{}\n\n",
        workload.num_cores(),
        workload.total_len(),
        cfg.cache_size,
        cfg.tau,
        match &capacity {
            Some(schedule) => format!(", K(t) = {schedule}"),
            None => String::new(),
        }
    ));
    let mut table = Table::new(
        "per-core results",
        &[
            "core",
            "requests",
            "faults",
            "hits",
            "fault rate",
            "completion",
        ],
    );
    for core in 0..workload.num_cores() {
        let n = workload.len(core);
        table.row(vec![
            core.to_string(),
            n.to_string(),
            result.faults[core].to_string(),
            result.hits[core].to_string(),
            if n == 0 {
                "-".into()
            } else {
                format!("{:.1}%", 100.0 * result.faults[core] as f64 / n as f64)
            },
            fairness::core_completion(&result, core).to_string(),
        ]);
    }
    out.push_str(&table.to_text());
    out.push_str(&format!(
        "\ntotal: {} faults / {} requests ({:.1}%), makespan {}\n",
        result.total_faults(),
        workload.total_len(),
        100.0 * result.total_faults() as f64 / workload.total_len().max(1) as f64,
        result.makespan
    ));

    if let Some(t) = args.get("at") {
        let t: u64 = t
            .parse()
            .map_err(|_| CliError::Other(format!("bad --at {t:?}")))?;
        out.push_str(&format!(
            "fault vector at t = {t}: {:?}\n",
            result.fault_vector_at(t)
        ));
    }
    if args.flag("fairness") {
        let s = fairness::summarize(&result);
        out.push_str(&format!(
            "fairness: slowdowns {:?}, Jain {:.3}, spread {:.2}\n",
            s.slowdowns
                .iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            s.jain_slowdown,
            s.spread
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use mcp_core::Workload;

    fn setup() -> String {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_sim_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2, 3, 1, 2, 3], vec![9, 9, 9, 9, 9, 9]]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        path
    }

    #[test]
    fn simulates_with_fairness_and_checkpoint() {
        let path = setup();
        let a = Args::parse(
            format!("simulate --trace {path} --k 4 --tau 2 --strategy lru --fairness --at 5")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("S_LRU"));
        assert!(out.contains("fault vector at t = 5"));
        assert!(out.contains("Jain"));
        assert!(out.contains("makespan"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capacity_schedule_changes_the_fault_count() {
        let path = setup();
        let base = format!("simulate --trace {path} --k 4 --strategy lru");
        let fixed = run(&Args::parse(base.split_whitespace().map(String::from)).unwrap()).unwrap();
        let dropped = run(&Args::parse(
            format!("{base} --capacity 4,2@3")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap())
        .unwrap();
        assert!(dropped.contains("K(t) = 4,2@3"), "{dropped}");
        assert!(!fixed.contains("K(t)"), "{fixed}");
        // The drop below the combined working set must cost faults.
        let faults = |out: &str| -> u64 {
            let tail = out.split("total: ").nth(1).unwrap();
            tail.split_whitespace().next().unwrap().parse().unwrap()
        };
        assert!(faults(&dropped) > faults(&fixed), "{dropped}\n{fixed}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_capacity_is_an_argument_error() {
        let path = setup();
        for spec in ["nope", "4,2@", "8,2@3"] {
            let a = Args::parse(
                format!("simulate --trace {path} --k 4 --capacity {spec}")
                    .split_whitespace()
                    .map(String::from),
            )
            .unwrap();
            match run(&a) {
                Err(CliError::Args(_)) => {}
                other => panic!("--capacity {spec} should be an argument error, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_trace_is_an_error() {
        let a = Args::parse(
            "simulate --trace /nonexistent.json --k 4"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(run(&a).is_err());
    }
}
