//! `mcp chaos` — the crash-recovery torture harness (DESIGN §13).
//!
//! ```text
//! mcp chaos [--instances 8] [--seed S] [--bits 64]
//!           [--plan SEED[:W,R,T[,C[,STALL_MS]]]] [--jobs N]
//! ```
//!
//! For every seeded instance: truncate a real FTF and PIF checkpoint at
//! every byte prefix, flip sampled bits, resume the genuine snapshots at
//! jobs 1/2/4, simulate write-crashes against the atomic save path, and
//! drive a full save → load → resume chain under a bounded fault plan.
//! Every stage must end in the bit-identical reference result or a typed
//! error; any panic, torn file, or silent divergence is a violation
//! (exit 1, each one listed).

use super::CliError;
use crate::args::{ArgError, Args};
use crate::commands::fuzz::parse_seed;
use mcp_chaos::FaultPlan;
use mcp_oracle::{run_torture, ChaosOptions};
use std::fmt::Write as _;

/// Run `mcp chaos`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let instances: usize = args.parse_or("instances", 8usize)?;
    let bit_flips: usize = args.parse_or("bits", 64usize)?;
    let seed = match args.get("seed") {
        None => 0,
        Some(text) => parse_seed(text).ok_or_else(|| {
            CliError::Args(ArgError::BadValue {
                key: "seed".to_string(),
                value: text.to_string(),
                expected: "a decimal or 0x-prefixed hex integer",
            })
        })?,
    };
    let plan = match args.get("plan") {
        None => FaultPlan::seeded(seed),
        Some(spec) => FaultPlan::parse(spec).map_err(|_| {
            CliError::Args(ArgError::BadValue {
                key: "plan".to_string(),
                value: spec.to_string(),
                expected: "SEED[:W,R,T[,C[,STALL_MS]]] with per-mille rates",
            })
        })?,
    };
    let options = ChaosOptions {
        instances,
        seed,
        bit_flips,
        plan,
        scratch_dir: std::env::temp_dir().join(format!("mcp-chaos-{}", std::process::id())),
        ..ChaosOptions::default()
    };
    let report = run_torture(&options);
    std::fs::remove_dir_all(&options.scratch_dir).ok();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos: {} instances, seed {:#x}, plan {:?}",
        report.instances, seed, plan
    );
    let _ = writeln!(out, "  prefix parses:        {}", report.prefix_parses);
    let _ = writeln!(out, "  bit-flip parses:      {}", report.bit_flip_parses);
    let _ = writeln!(out, "  resume checks:        {}", report.resume_checks);
    let _ = writeln!(out, "  crash simulations:    {}", report.crash_sims);
    let _ = writeln!(out, "  faulted chains:       {}", report.faulted_chains);
    if report.clean() {
        let _ = writeln!(out, "  violations:           0");
        Ok(out)
    } else {
        let _ = writeln!(out, "  violations:           {}", report.violations.len());
        for v in &report.violations {
            let _ = writeln!(out, "    {v}");
        }
        Err(CliError::Other(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos(line: &str) -> Result<String, CliError> {
        run(&Args::parse(line.split_whitespace().map(String::from)).unwrap())
    }

    #[test]
    fn a_tiny_torture_run_is_clean() {
        let out = chaos("chaos --instances 1 --bits 8 --seed 0xC4").unwrap();
        assert!(out.contains("violations:           0"), "{out}");
        assert!(out.contains("crash simulations:    1"), "{out}");
    }

    #[test]
    fn bad_seeds_and_plans_are_rejected() {
        assert!(chaos("chaos --seed nope").is_err());
        assert!(chaos("chaos --plan 0:only-two,5").is_err());
    }
}
