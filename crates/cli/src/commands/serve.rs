//! `mcp serve` — the streaming online cache-management service.
//!
//! ```text
//! # seeded, self-driving (deterministic; writes an oracle-checkable log)
//! mcp serve --cores 4 --k 32 --tau 4 --strategy lru --seed 7 --n 200000 \
//!           --replay-log run.trace
//! mcp simulate --trace run.trace --k 32 --tau 4 --strategy lru   # same faults
//!
//! # dynamic capacity: the replay contract extends verbatim
//! mcp serve --cores 4 --k 32 --strategy lru --seed 7 --capacity 32,16@500 \
//!           --replay-log run.trace
//! mcp simulate --trace run.trace --k 32 --strategy lru --capacity 32,16@500
//!
//! # socket mode (clients connect with `mcp blast`); SIGINT drains and exits 0
//! mcp serve --cores 4 --k 32 --strategy lru --listen unix:/tmp/mcp.sock \
//!           --snapshot-ms 500
//! ```
//!
//! Metrics snapshots stream to **stdout**, one JSON object per line; the
//! human summary goes to **stderr** so stdout stays machine-parseable.

use super::{build_strategy, capacity_from, CliError};
use crate::args::{ArgError, Args};
use mcp_core::{SimConfig, Workload};
use mcp_serve::{serve_connection, Discipline, ServeConfig, ServeError, ServeReport, Server};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// Strategies whose `begin` reads the full future trace — they cannot
/// serve a live stream (`mcp_core::online` module docs).
const OFFLINE_ONLY: &[&str] = &["fitf", "mimic", "partition-opt", "sacrifice"];

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn serve_err(e: ServeError) -> CliError {
    CliError::Other(e.to_string())
}

/// Run `mcp serve`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let cores: usize = args.parse_required("cores")?;
    let k: usize = args.parse_required("k")?;
    let tau: u64 = args.parse_or("tau", 0u64)?;
    let sim = SimConfig::new(k, tau);

    let spec = args.get("strategy").unwrap_or("lru");
    let head = spec.split_once(':').map(|(h, _)| h).unwrap_or(spec);
    if OFFLINE_ONLY.contains(&head) {
        return Err(CliError::Other(format!(
            "strategy {spec:?} is offline-only (its begin reads the full future trace) and \
             cannot serve a live stream; online-safe strategies: lru, fifo, clock, lfu, mru, \
             fwf, lru2, rand, mark, mark-rand, partition[:sizes]"
        )));
    }
    // Online strategies ignore the sequences in `begin`, so building
    // against an empty p-core workload is exact, not an approximation.
    let empty =
        Workload::new(vec![Vec::new(); cores]).map_err(|e| CliError::Other(e.to_string()))?;
    sim.validate(&empty)
        .map_err(|e| CliError::Other(e.to_string()))?;
    let strategy = build_strategy(spec, &empty, sim)?;

    let mut cfg = ServeConfig::new(cores, sim);
    let disc_spec = args.get("discipline").unwrap_or("dfcfs");
    cfg.discipline = disc_spec.parse::<Discipline>().map_err(|_| {
        CliError::Args(ArgError::BadValue {
            key: "discipline".into(),
            value: disc_spec.into(),
            expected: "cfcfs or dfcfs",
        })
    })?;
    cfg.depth = args.parse_or("depth", 1024usize)?;
    cfg.batch = args.parse_or("batch", 256usize)?;
    let snapshot_ms: u64 = args.parse_or("snapshot-ms", 0u64)?;
    if snapshot_ms > 0 {
        cfg.snapshot_every = Some(Duration::from_millis(snapshot_ms));
    }
    cfg.replay_log = args.get("replay-log").map(PathBuf::from);
    cfg.capacity = capacity_from(args, k)?;
    let quiet = args.flag("quiet");

    let seed = args.get("seed");
    let listen = args.get("listen");
    let server = Server::new(cfg, strategy).map_err(serve_err)?;

    let report = match (seed, listen) {
        (Some(_), Some(_)) => {
            return Err(CliError::Other(
                "--seed (self-driving) and --listen (socket) are mutually exclusive".into(),
            ))
        }
        (None, None) => {
            return Err(CliError::Other(
                "mcp serve needs an input: --seed S (deterministic self-driving stream) \
                 or --listen unix:PATH|tcp:ADDR"
                    .into(),
            ))
        }
        (Some(_), None) => {
            let seed: u64 = args.parse_required("seed")?;
            let n: u64 = args.parse_or("n", 100_000u64)?;
            let universe: u64 = args.parse_or("universe", 64u64)?.max(1);
            let client = server.client();
            // One deterministic producer over the lossless path: the
            // admitted log depends only on (seed, n, universe, cores),
            // never on timing, batching, or --jobs.
            let producer = std::thread::spawn(move || {
                let stop = AtomicBool::new(false);
                let mut rng = seed;
                for i in 0..n {
                    rng = splitmix64(rng);
                    let core = (i % cores as u64) as u32;
                    if !client.offer_blocking(core, (rng % universe) as u32, &stop) {
                        break; // stream gated (SIGINT): stop cleanly
                    }
                }
                client.close(None);
            });
            let report = server
                .run(|snap| println!("{}", snap.to_json()))
                .map_err(serve_err)?;
            producer.join().expect("producer thread panicked");
            report
        }
        (None, Some(endpoint)) => {
            let queues = server.client();
            let cleanup = spawn_listener(endpoint, queues, quiet)?;
            let report = server
                .run(|snap| println!("{}", snap.to_json()))
                .map_err(serve_err)?;
            if let Some(path) = cleanup {
                let _ = std::fs::remove_file(path);
            }
            report
        }
    };

    if !quiet {
        eprintln!("{}", summary(&report));
    }
    Ok(String::new())
}

/// Bind the endpoint and run accept/decoder threads in the background.
/// Returns the socket path to unlink on shutdown (Unix sockets only).
/// Threads never touch the engine — they die with the process.
fn spawn_listener(
    endpoint: &str,
    queues: mcp_serve::QueueSet,
    quiet: bool,
) -> Result<Option<PathBuf>, CliError> {
    let (scheme, addr) = endpoint.split_once(':').ok_or_else(|| {
        CliError::Args(ArgError::BadValue {
            key: "listen".into(),
            value: endpoint.into(),
            expected: "unix:PATH or tcp:HOST:PORT",
        })
    })?;
    match scheme {
        "unix" => {
            let path = PathBuf::from(addr);
            let _ = std::fs::remove_file(&path); // stale socket from a previous run
            let listener = std::os::unix::net::UnixListener::bind(&path)?;
            if !quiet {
                eprintln!("listening on unix:{addr}");
            }
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    let Ok(mut stream) = stream else { continue };
                    let queues = queues.clone();
                    std::thread::spawn(move || {
                        if let Err(e) = serve_connection(&mut stream, &queues) {
                            eprintln!("connection dropped: {e}");
                        }
                    });
                }
            });
            Ok(Some(path))
        }
        "tcp" => {
            let listener = std::net::TcpListener::bind(addr).map_err(CliError::Io)?;
            if !quiet {
                eprintln!("listening on tcp:{addr}");
            }
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    let Ok(mut stream) = stream else { continue };
                    let queues = queues.clone();
                    std::thread::spawn(move || {
                        if let Err(e) = serve_connection(&mut stream, &queues) {
                            eprintln!("connection dropped: {e}");
                        }
                    });
                }
            });
            Ok(None)
        }
        other => Err(CliError::Args(ArgError::BadValue {
            key: "listen".into(),
            value: other.into(),
            expected: "unix:PATH or tcp:HOST:PORT",
        })),
    }
}

fn summary(report: &ServeReport) -> String {
    let t = &report.totals;
    let secs = report.elapsed.as_secs_f64();
    let rate = if secs > 0.0 {
        report.served as f64 / secs
    } else {
        0.0
    };
    format!(
        "served {} requests in {:.2}s ({:.0} req/s): offered {}, admitted {}, dropped {}, \
         rejected-late {}; faults {}, makespan {}",
        report.served,
        secs,
        rate,
        t.offered,
        t.admitted,
        t.dropped,
        report.rejected_late,
        report.result.total_faults(),
        report.result.makespan
    )
}
