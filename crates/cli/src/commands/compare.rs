//! `mcp compare` — run the whole strategy matrix on a trace.
//!
//! ```text
//! mcp compare --trace w.json --k 32 --tau 4 [--strategies lru,fifo,mimic]
//!             [--capacity K0[,K@T]…]
//! ```
//!
//! With `--capacity`, every strategy races under the same dynamic
//! capacity schedule `K(t)` (initial capacity must equal `--k`).

use super::{build_strategy, capacity_from, load_instance, CliError};
use crate::args::Args;
use mcp_analysis::fairness;
use mcp_analysis::report::Table;

const DEFAULT_MATRIX: &[&str] = &[
    "lru",
    "fifo",
    "clock",
    "lfu",
    "lru2",
    "mark",
    "fwf",
    "partition",
    "partition-opt",
    "mimic",
    "fitf",
];

/// Run `mcp compare`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let (workload, cfg) = load_instance(args)?;
    let capacity = capacity_from(args, cfg.cache_size)?;
    let specs: Vec<String> = match args.get("strategies") {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        None => DEFAULT_MATRIX.iter().map(|s| s.to_string()).collect(),
    };
    let mut table = Table::new(
        format!(
            "p = {}, n = {}, K = {}, tau = {}{}",
            workload.num_cores(),
            workload.total_len(),
            cfg.cache_size,
            cfg.tau,
            match &capacity {
                Some(schedule) => format!(", K(t) = {schedule}"),
                None => String::new(),
            }
        ),
        &[
            "strategy",
            "faults",
            "fault rate",
            "makespan",
            "Jain(slowdown)",
        ],
    );
    // Strategies are independent: run the matrix on the pool. Errors
    // surface in spec order, as they would sequentially.
    let outcomes = mcp_exec::Pool::global().par_map(&specs, |_, spec| {
        let mut strategy = build_strategy(spec, &workload, cfg)?;
        mcp_core::CacheStrategy::begin(&mut strategy, &workload, &cfg);
        let name = strategy.name();
        let result = match &capacity {
            Some(schedule) => {
                mcp_core::simulate_with_capacity(&workload, cfg, schedule.clone(), strategy)
            }
            None => mcp_core::simulate(&workload, cfg, strategy),
        }
        .map_err(|e| CliError::Other(format!("{spec}: {e}")))?;
        let s = fairness::summarize(&result);
        Ok::<_, CliError>((
            result.total_faults(),
            vec![
                name,
                result.total_faults().to_string(),
                format!(
                    "{:.1}%",
                    100.0 * result.total_faults() as f64 / workload.total_len().max(1) as f64
                ),
                result.makespan.to_string(),
                format!("{:.3}", s.jain_slowdown),
            ],
        ))
    });
    let mut rows: Vec<(u64, Vec<String>)> = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        rows.push(outcome?);
    }
    rows.sort_by_key(|(faults, _)| *faults);
    for (_, row) in rows {
        table.row(row);
    }
    Ok(table.to_text())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use mcp_core::Workload;

    #[test]
    fn compares_default_matrix_sorted_by_faults() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_cmp_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2, 3, 1, 2, 3, 1, 2], vec![9, 8, 9, 8, 9, 8, 9, 8]])
            .unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let a = Args::parse(
            format!("compare --trace {path} --k 4 --tau 1")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let out = run(&a).unwrap();
        for name in ["S_LRU", "S_FIFO", "dP[LRU-mimic]_LRU", "S_FITF"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capacity_schedule_shows_in_the_header() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_cmp3_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2, 1, 2, 1, 2], vec![8, 9, 8, 9, 8, 9]]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let a = Args::parse(
            format!("compare --trace {path} --k 4 --strategies lru,fifo --capacity 4,2@3")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("K(t) = 4,2@3"), "{out}");
        assert!(out.contains("S_LRU") && out.contains("S_FIFO"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn custom_strategy_list() {
        let path = std::env::temp_dir()
            .join(format!("mcp_cli_cmp2_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let w = Workload::from_u32([vec![1, 2, 1, 2]]).unwrap();
        mcp_workloads::save_json(&w, std::path::Path::new(&path)).unwrap();
        let a = Args::parse(
            format!("compare --trace {path} --k 2 --strategies lru,mru")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("S_LRU") && out.contains("S_MRU"));
        assert!(!out.contains("S_FIFO"));
        std::fs::remove_file(&path).ok();
    }
}
