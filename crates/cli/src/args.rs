//! A tiny, dependency-free argument parser for the `mcp` tool: positional
//! subcommand plus `--key value` / `--flag` options, with typed accessors
//! and helpful errors.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: subcommand, positionals, and options.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// The first positional token (e.g. `simulate`).
    pub command: Option<String>,
    /// Remaining positionals after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` and bare `--flag` options (flags map to `""`).
    pub options: BTreeMap<String, String>,
}

/// Argument errors, with the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ArgError {
    /// A `--key` requiring a value (all non-listed flags do) at the end.
    MissingValue(String),
    /// A required option was not supplied.
    Required(String),
    /// A value failed to parse.
    BadValue {
        key: String,
        value: String,
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::Required(k) => write!(f, "missing required option --{k}"),
            ArgError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key} {value:?}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Option names that are boolean flags (take no value).
const FLAGS: &[&str] = &[
    "fairness",
    "schedule",
    "text",
    "full",
    "help",
    "quiet",
    "stats",
    "json",
    "no-crosscheck",
    "chaos",
    "no-close",
];

impl Args {
    /// Parse a token stream (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if FLAGS.contains(&key) {
                    args.options.insert(key.to_string(), String::new());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(key.to_string()))?;
                    args.options.insert(key.to_string(), value);
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError::Required(key.to_string()))
    }

    /// A parsed option with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// A required parsed option.
    pub fn parse_required<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self.require(key)?;
        v.parse().map_err(|_| ArgError::BadValue {
            key: key.to_string(),
            value: v.to_string(),
            expected: std::any::type_name::<T>(),
        })
    }

    /// A comma-separated list of integers (e.g. `--bounds 3,4,5`).
    pub fn parse_list(&self, key: &str) -> Result<Option<Vec<u64>>, ArgError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|tok| {
                    tok.trim().parse::<u64>().map_err(|_| ArgError::BadValue {
                        key: key.to_string(),
                        value: v.to_string(),
                        expected: "comma-separated integers",
                    })
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn basic_shape() {
        let a = parse("simulate --k 8 --tau 2 trace.json --fairness").unwrap();
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.positional, vec!["trace.json"]);
        assert_eq!(a.get("k"), Some("8"));
        assert!(a.flag("fairness"));
        assert!(!a.flag("schedule"));
    }

    #[test]
    fn typed_accessors() {
        let a = parse("x --k 8").unwrap();
        assert_eq!(a.parse_or("k", 4usize).unwrap(), 8);
        assert_eq!(a.parse_or("tau", 3u64).unwrap(), 3);
        assert_eq!(a.parse_required::<usize>("k").unwrap(), 8);
        assert!(matches!(
            a.parse_required::<usize>("q"),
            Err(ArgError::Required(_))
        ));
    }

    #[test]
    fn bad_values_error() {
        let a = parse("x --k eight").unwrap();
        assert!(matches!(
            a.parse_or("k", 1usize),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn lists() {
        let a = parse("x --bounds 1,2,3").unwrap();
        assert_eq!(a.parse_list("bounds").unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(a.parse_list("other").unwrap(), None);
        let b = parse("x --bounds 1,x").unwrap();
        assert!(b.parse_list("bounds").is_err());
    }

    #[test]
    fn missing_value_detected() {
        assert!(matches!(parse("x --k"), Err(ArgError::MissingValue(_))));
    }

    #[test]
    fn errors_render() {
        assert!(ArgError::Required("k".into()).to_string().contains("--k"));
        assert!(ArgError::MissingValue("k".into())
            .to_string()
            .contains("--k"));
    }
}
