//! The `mcp` binary: thin shell over [`mcp_cli::dispatch`].

fn main() {
    // Ctrl-C flips the process-wide cancel flag; governed solvers (opt,
    // pif) notice it at the next layer boundary, save their checkpoint,
    // and exit 3 with the anytime result instead of dying mid-run.
    mcp_core::budget::install_ctrlc_handler();
    // MCP_CHAOS=SEED[:W,R,T[,C[,STALL_MS]]] arms a deterministic fault
    // plan for the whole process — the hook the crash-recovery e2e tests
    // drive; without the variable this is a no-op.
    mcp_chaos::arm_from_env();
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let args = match mcp_cli::args::Args::parse(tokens) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mcp: {e}");
            std::process::exit(2);
        }
    };
    if args.flag("help") {
        print!("{}", mcp_cli::USAGE);
        return;
    }
    match mcp_cli::dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("mcp: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
