//! # mcp-cli — the `mcp` command-line tool
//!
//! Generate, simulate, compare, and exactly solve multicore paging
//! instances from the shell:
//!
//! ```text
//! mcp gen zipf --cores 4 --n 2000 --universe 128 --out w.json
//! mcp simulate --trace w.json --k 32 --tau 4 --strategy lru --fairness
//! mcp compare  --trace w.json --k 32 --tau 4
//! mcp curves   --trace w.json --max-k 16
//! mcp partition --trace w.json --k 32 --policy opt
//! mcp opt --trace small.json --k 3 --tau 1 --schedule
//! mcp pif --trace small.json --k 3 --tau 1 --at 20 --bounds 4,5
//! ```
//!
//! The library half exposes [`dispatch`] plus the testable pieces
//! ([`args`], [`commands`]).

#![warn(missing_docs)]

pub mod args;
pub mod commands;

use args::Args;
use commands::CliError;

/// Usage text.
pub const USAGE: &str = "\
mcp — multicore paging toolkit (López-Ortiz & Salinger, SPAA'11)

usage: mcp <command> [options]

commands:
  gen <kind>   generate a workload (uniform|zipf|phased|cycles|graph|mixed)
                 --cores N --n N --seed S --out FILE [--text]
  simulate     run one strategy        --trace F --k K [--tau T]
                 [--strategy lru|fifo|clock|lfu|mru|fwf|lru2|rand|mark|
                  mark-rand|fitf|mimic|partition[:sizes]|partition-opt|
                  sacrifice[:core]] [--fairness] [--at T]
  compare      run a strategy matrix   --trace F --k K [--tau T]
                 [--strategies a,b,c]
  stats        workload profile        --trace F
  curves       per-core miss curves    --trace F [--max-k K] [--core N]
  partition    optimal static split    --trace F --k K [--policy lru|opt]
  opt          exact min faults (DP)   --trace F --k K [--tau T] [--schedule]
                 [--deadline DUR] [--checkpoint FILE]
  pif          fairness feasibility    --trace F --k K --at T --bounds a,b,…
                 [--deadline DUR] [--checkpoint FILE]
  fuzz         differential fuzz: event vs. tick vs. naive reference
                 [--instances N] [--seed S] [--corpus DIR]
                 [--families a,b,…] [--profile mixed|large-tau|batch]
                 [--chaos] [--chaos-seed S];
                 divergences shrink to fixtures under DIR and exit 1;
                 --chaos arms a seeded fault plan (injected panics and
                 stalls) and retries each instance past injected faults —
                 only real divergences survive as quarantined failures
  chaos        crash-recovery torture: every byte-prefix truncation and
                 sampled bit flips of real checkpoints must fail typed,
                 resume at jobs 1/2/4 must match the reference
                 bit-for-bit, simulated write-crashes must never tear the
                 target, and a faulted save/load/resume chain must
                 recover [--instances N] [--seed S] [--bits N]
                 [--plan SEED[:W,R,T[,C[,STALL_MS]]]]; violations exit 1
  serve        streaming online service: per-core bounded queues
                 (cFCFS/dFCFS), live strategy, JSON metric snapshots on
                 stdout --cores P --k K [--tau T] [--strategy NAME]
                 [--discipline cfcfs|dfcfs] [--depth N] [--batch N]
                 [--snapshot-ms MS] [--replay-log FILE] [--quiet] and one
                 input mode: --seed S [--n N] [--universe U]
                 (deterministic self-driving stream; the replay log pipes
                 into `mcp simulate -` and reproduces the same faults) or
                 --listen unix:PATH|tcp:HOST:PORT (socket clients; SIGINT
                 drains, snapshots, writes the log, exits 0). Offline
                 strategies (fitf, mimic, partition-opt, sacrifice) are
                 rejected — their begin reads the future
  blast        load-generating client for serve
                 --connect unix:PATH|tcp:HOST:PORT [--cores P] [--n N]
                 [--seed S] [--universe U] [--batch B] [--no-close]
  tournament   strategy tournament on the batch engine: regret and
                 pairwise-dominance tables over a families × workloads
                 × K × τ grid
                 [--families a,b,…] [--workloads uniform|zipf|zipf-shared|
                  phased|drift|shared-hotset|staggered|bursty,…]
                 [--k 8,16] [--tau 0,4] [--cores N] [--n N] [--seeds N]
                 [--seed S] [--universe N] [--json] [--no-crosscheck]
                 [--deadline DUR]; a seeded sample of cells is re-run on
                 the per-run simulator and must match bit-for-bit

global options:
  --jobs N     worker threads for compare, curves and the exact solvers
               (default: MCP_JOBS or all hardware threads; results are
               identical for every N)

resource governance (opt, pif):
  --deadline DUR    stop at a wall-clock budget (30s, 500ms, 2m); a
                    truncated opt prints its anytime bracket
                    [lower_bound, incumbent] and exits 3
  --checkpoint FILE save the DP frontier on truncation (also on Ctrl-C)
                    and resume from FILE when re-run; removed on completion

Traces are JSON (.json) or the compact text format (anything else);
`--trace -` reads the text format from stdin.
The exact solvers (opt, pif) are exponential in K and p: keep instances small.
exit codes: 0 ok · 1 error · 2 bad arguments or malformed trace · 3 partial
";

/// Dispatch a parsed command line to its implementation.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    let jobs: usize = args.parse_or("jobs", 0usize)?;
    if jobs > 0 {
        mcp_exec::set_jobs(Some(jobs));
    }
    match args.command.as_deref() {
        None => Ok(USAGE.to_string()),
        Some("help") => Ok(USAGE.to_string()),
        Some("gen") => commands::gen::run(args),
        Some("simulate") => commands::simulate::run(args),
        Some("stats") => commands::stats::run(args),
        Some("compare") => commands::compare::run(args),
        Some("curves") => commands::curves::run(args),
        Some("partition") => commands::partition::run(args),
        Some("opt") => commands::opt::run(args),
        Some("pif") => commands::pif::run(args),
        Some("fuzz") => commands::fuzz::run(args),
        Some("chaos") => commands::chaos::run(args),
        Some("tournament") => commands::tournament::run(args),
        Some("serve") => commands::serve::run(args),
        Some("blast") => commands::blast::run(args),
        Some(other) => Err(CliError::Other(format!(
            "unknown command {other:?}; try `mcp help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_commands() {
        let none = Args::parse(std::iter::empty::<String>()).unwrap();
        assert!(dispatch(&none).unwrap().contains("usage: mcp"));
        let help = Args::parse(["help".to_string()]).unwrap();
        assert!(dispatch(&help).unwrap().contains("commands:"));
        let bad = Args::parse(["frobnicate".to_string()]).unwrap();
        assert!(dispatch(&bad).is_err());
    }
}
