//! Property tests of the determinism contract: for arbitrary workloads
//! and every pool size 1..8, `par_map` must equal the sequential map,
//! element for element and in order — thread count is never observable
//! in the results.

use mcp_exec::{derive_seed, Pool};
use proptest::prelude::*;

/// A cheap but order-sensitive per-task computation: hash of (value,
/// index, derived seed), plus variable spin so task durations differ
/// and the work-stealing interleavings actually vary.
fn task(seed: u64, index: usize, value: u64) -> u64 {
    let mut h = value ^ derive_seed(seed, index as u64);
    for _ in 0..(value % 17) {
        h = h.wrapping_mul(0x100_0000_01b3).rotate_left(9) ^ index as u64;
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn par_map_equals_sequential_for_every_pool_size(
        values in prop::collection::vec(0u64..1000, 0..120),
        master in 0u64..u64::MAX,
    ) {
        let reference: Vec<u64> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| task(master, i, v))
            .collect();
        for jobs in 1..=8usize {
            let got = Pool::new(jobs).par_map(&values, |i, &v| task(master, i, v));
            prop_assert_eq!(&got, &reference, "pool size {} diverged", jobs);
        }
    }

    #[test]
    fn emit_order_is_the_input_order_for_every_pool_size(
        values in prop::collection::vec(0u64..1000, 1..80),
    ) {
        for jobs in 1..=8usize {
            let mut order = Vec::new();
            Pool::new(jobs).par_map_emit(
                &values,
                |i, &v| task(7, i, v),
                |i, _| order.push(i),
            );
            let want: Vec<usize> = (0..values.len()).collect();
            prop_assert_eq!(&order, &want, "pool size {} emitted out of order", jobs);
        }
    }

    #[test]
    fn seeded_map_is_thread_count_invariant(
        values in prop::collection::vec(0u64..100, 0..60),
        master in 0u64..u64::MAX,
    ) {
        let reference = Pool::new(1).par_map_seeded(master, &values, |seed, i, &v| {
            // A task-local "RNG": mix the derived seed into the value.
            seed.rotate_left((v % 63) as u32) ^ (i as u64)
        });
        for jobs in [2usize, 5, 8] {
            let got = Pool::new(jobs).par_map_seeded(master, &values, |seed, i, &v| {
                seed.rotate_left((v % 63) as u32) ^ (i as u64)
            });
            prop_assert_eq!(&got, &reference);
        }
    }
}
