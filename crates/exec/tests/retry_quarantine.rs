//! Fault-containment contracts of the pool under adversarial conditions:
//! ordered-slot delivery when *multiple* tasks panic inside the same
//! work-stealing chunk, and the retry/quarantine layer under injected
//! chaos faults — identical results at every worker count.

use mcp_chaos::{arm_scoped, FaultPlan};
use mcp_exec::{Pool, Quarantined};
use std::panic;
use std::sync::Mutex;

/// Silence the default panic hook for the duration of a test (contained
/// panics would otherwise spam stderr).
fn quietly<R>(f: impl FnOnce() -> R) -> R {
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = f();
    panic::set_hook(hook);
    out
}

#[test]
fn multiple_panics_in_the_same_chunk_keep_ordered_slots() {
    // Pool::new(2) over 32 items → chunk size 32/(2*4) = 4, so indices
    // 4..8 form one whole chunk; poisoning all four exercises repeated
    // unwinds inside a single stolen chunk.
    let items: Vec<usize> = (0..32).collect();
    let poisoned = 4..8;
    quietly(|| {
        for workers in [1, 2, 4] {
            let pool = Pool::new(workers);
            let results = pool.par_try_map(&items, |_, &x| {
                if poisoned.contains(&x) {
                    panic!("poisoned item {x}");
                }
                x * 10
            });
            assert_eq!(results.len(), items.len());
            for (i, slot) in results.iter().enumerate() {
                if poisoned.contains(&i) {
                    let p = slot.as_ref().unwrap_err();
                    assert_eq!(p.index, i, "panic lands in its own slot");
                    assert_eq!(p.message, format!("poisoned item {i}"));
                } else {
                    assert_eq!(slot.as_ref().unwrap(), &(i * 10), "workers={workers}");
                }
            }
        }
    });
}

#[test]
fn emit_streams_every_slot_in_order_despite_same_chunk_panics() {
    let items: Vec<usize> = (0..32).collect();
    quietly(|| {
        let pool = Pool::new(2);
        let mut seen = Vec::new();
        pool.par_try_map_emit(
            &items,
            |_, &x| {
                if (12..16).contains(&x) {
                    panic!("boom {x}");
                }
                x
            },
            |i, slot| seen.push((i, slot.is_ok())),
        );
        let expected: Vec<(usize, bool)> = (0..32).map(|i| (i, !(12..16).contains(&i))).collect();
        assert_eq!(seen, expected, "emit order is input order, panics included");
    });
}

#[test]
fn deterministic_failures_are_quarantined_while_the_rest_complete() {
    let items: Vec<usize> = (0..24).collect();
    quietly(|| {
        let pool = Pool::new(3);
        let results = pool.par_try_map_retry("test.quarantine", 3, &items, |_, &x| {
            if x % 7 == 3 {
                panic!("always broken {x}");
            }
            x + 1
        });
        for (i, slot) in results.iter().enumerate() {
            if i % 7 == 3 {
                let q: &Quarantined = slot.as_ref().unwrap_err();
                assert_eq!((q.index, q.attempts), (i, 3));
                assert_eq!(q.last.message, format!("always broken {i}"));
                assert_eq!(q.last.index, i, "retry rounds re-anchor the input index");
            } else {
                assert_eq!(slot.as_ref().unwrap(), &(i + 1));
            }
        }
    });
}

#[test]
fn injected_faults_are_retried_to_identical_results_at_every_worker_count() {
    let items: Vec<u64> = (0..48).collect();
    let plan = FaultPlan {
        task_per_mille: 600,
        max_consecutive: 2,
        max_stall_ms: 2,
        ..FaultPlan::seeded(0xC5A0_5011)
    };
    quietly(|| {
        let _guard = arm_scoped(plan);
        let mut reference: Option<Vec<Result<u64, Quarantined>>> = None;
        for workers in [1, 2, 4, 8] {
            let pool = Pool::new(workers);
            let results = pool.par_try_map_retry("test.chaos", 4, &items, |_, &x| x * 3);
            assert!(
                results.iter().all(|r| r.is_ok()),
                "injected faults must clear within the retry budget (workers={workers})"
            );
            match &reference {
                None => reference = Some(results),
                Some(r) => assert_eq!(&results, r, "workers={workers}"),
            }
        }
    });
}

#[test]
fn retry_emit_observes_every_slot_once_in_input_order() {
    let items: Vec<usize> = (0..20).collect();
    quietly(|| {
        let pool = Pool::new(2);
        let emitted = Mutex::new(Vec::new());
        let results = pool.par_try_map_retry_emit(
            "test.emit",
            2,
            &items,
            |_, &x| {
                if x == 5 || x == 11 {
                    panic!("broken {x}");
                }
                x
            },
            |i, slot| emitted.lock().unwrap().push((i, slot.is_ok())),
        );
        let expected: Vec<(usize, bool)> = (0..20).map(|i| (i, i != 5 && i != 11)).collect();
        assert_eq!(*emitted.lock().unwrap(), expected);
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 2);
    });
}
