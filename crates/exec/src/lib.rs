//! # mcp-exec — the deterministic parallel execution layer
//!
//! Every compute surface in this workspace — the `repro` experiment
//! fleet, per-experiment parameter sweeps, the offline DP layer
//! expansions, the CLI strategy matrix — is embarrassingly parallel, and
//! all of it must stay **bit-identical** across thread counts so that
//! reproduction outputs and `engine_fingerprint` checksums never depend
//! on the machine. This crate provides that contract:
//!
//! * [`Pool::par_map`] fans a slice out over scoped worker threads with
//!   **chunked work-stealing** (workers claim index ranges from a shared
//!   atomic cursor) and returns results **in input order**, whatever the
//!   interleaving was.
//! * [`Pool::par_try_map`] is the fault-contained variant: a panicking
//!   task becomes a per-item [`TaskPanic`] error in its slot while the
//!   rest of the batch completes — one bad experiment cannot abort a
//!   sweep.
//! * [`derive_seed`] gives task `i` of a master-seeded batch its own
//!   statistically independent seed as a pure function of
//!   `(master, index)`, so randomized tasks produce the same stream no
//!   matter which worker runs them.
//! * The pool size resolves from, in priority order: an explicit
//!   [`Pool::new`], the process-wide [`set_jobs`] (the `--jobs` flag of
//!   the binaries), the `MCP_JOBS` environment variable, and finally
//!   [`std::thread::available_parallelism`].
//!
//! Nesting rule: a `par_map` issued from *inside* a pool worker runs
//! sequentially on that worker (depth-1 parallelism). The top-level
//! fan-out already owns every core; nested fan-outs would only
//! oversubscribe the machine, and the sequential fallback is
//! result-identical by construction.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A task that panicked inside a [`Pool::par_try_map`] batch: the panic
/// was contained to its item instead of aborting the whole fan-out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// Input index of the task that panicked.
    pub index: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads are
    /// carried verbatim).
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// A task that kept panicking through every retry round of
/// [`Pool::par_try_map_retry`] and was quarantined: its slot carries the
/// last panic while the rest of the batch completed normally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quarantined {
    /// Input index of the quarantined task.
    pub index: usize,
    /// How many attempts it was given (all panicked).
    pub attempts: u32,
    /// The panic from the final attempt.
    pub last: TaskPanic,
}

impl fmt::Display for Quarantined {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} quarantined after {} attempts: {}",
            self.index, self.attempts, self.last.message
        )
    }
}

impl std::error::Error for Quarantined {}

/// Render a caught panic payload as text.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Unset sentinel for the process-wide jobs override.
const JOBS_UNSET: usize = 0;

/// Process-wide jobs override (0 = unset). Set once by binaries from
/// `--jobs`; read by [`Pool::global`].
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(JOBS_UNSET);

thread_local! {
    /// Whether the current thread is a pool worker (depth-1 guard).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Set the process-wide worker count used by [`Pool::global`] (the
/// `--jobs N` flag). `None` clears the override back to the
/// `MCP_JOBS`-or-hardware default.
pub fn set_jobs(jobs: Option<usize>) {
    GLOBAL_JOBS.store(jobs.unwrap_or(JOBS_UNSET), Ordering::Relaxed);
}

/// Resolve the effective worker count: [`set_jobs`] override, then the
/// `MCP_JOBS` environment variable, then the hardware parallelism.
/// Always at least 1.
pub fn resolved_jobs() -> usize {
    let explicit = GLOBAL_JOBS.load(Ordering::Relaxed);
    if explicit != JOBS_UNSET {
        return explicit.max(1);
    }
    if let Ok(v) = std::env::var("MCP_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derive the seed for task `index` of a batch with the given master
/// seed: `splitmix64(master ⊕ golden·(index+1))`. A pure function, so a
/// task's random stream is fixed by its *position*, not by the worker or
/// the order in which it ran.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A worker pool of a fixed size. Creating a `Pool` is free — threads
/// are scoped to each [`Pool::par_map`] call, so a `Pool` is just the
/// parallelism decision, not a resource.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool of exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Pool { jobs: jobs.max(1) }
    }

    /// The pool configured for this process (see [`resolved_jobs`]).
    pub fn global() -> Self {
        Pool::new(resolved_jobs())
    }

    /// The worker count this pool was built with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Map `f` over `items` in parallel, returning results in input
    /// order. `f` receives `(index, &item)`. Bit-identical to the
    /// sequential `items.iter().enumerate().map(..)` for every pool
    /// size; panics in `f` propagate to the caller.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_emit(items, f, |_, _| {})
    }

    /// Like [`Pool::par_map`], with a streaming sink: `emit(index, &result)`
    /// is called on the **caller's thread, in input order**, as each
    /// ordered prefix of results completes. This is how `repro` prints
    /// finished experiment reports in ID order while later experiments
    /// are still running.
    pub fn par_map_emit<T, R, F, E>(&self, items: &[T], f: F, mut emit: E) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        E: FnMut(usize, &R),
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        let nested = IN_WORKER.with(Cell::get);
        if workers <= 1 || nested {
            // Sequential reference semantics (also the nested fallback).
            let mut out = Vec::with_capacity(n);
            for (i, item) in items.iter().enumerate() {
                let r = f(i, item);
                emit(i, &r);
                out.push(r);
            }
            return out;
        }

        // Chunked work-stealing: workers claim `chunk`-sized index
        // ranges from a shared cursor. The chunk size splits the input
        // into ~4 claims per worker so late stragglers rebalance, while
        // keeping cursor traffic negligible.
        let cursor = AtomicUsize::new(0);
        let chunk = (n / (workers * 4)).max(1);
        let (tx, rx) = mpsc::channel::<(usize, R)>();

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let panic = std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    // On panic the sender drops, the receive loop below
                    // comes up short, and join propagates the payload.
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (i, item) in items[start..end].iter().enumerate() {
                            let i = start + i;
                            if tx.send((i, f(i, item))).is_err() {
                                return;
                            }
                        }
                    }
                });
            }
            drop(tx);

            // Receive out-of-order completions; emit the ordered prefix.
            let mut next_emit = 0usize;
            let mut received = 0usize;
            while received < n {
                match rx.recv() {
                    Ok((i, r)) => {
                        slots[i] = Some(r);
                        received += 1;
                        while next_emit < n {
                            match &slots[next_emit] {
                                Some(r) => {
                                    // A panicking `emit` must not abort via
                                    // double-panic while workers unwind.
                                    if let Err(p) =
                                        catch_unwind(AssertUnwindSafe(|| emit(next_emit, r)))
                                    {
                                        drop(rx);
                                        return Some(p);
                                    }
                                    next_emit += 1;
                                }
                                None => break,
                            }
                        }
                    }
                    // Every sender dropped with results missing: a
                    // worker panicked. Joining (at scope exit) resumes
                    // that panic; no payload of our own to carry.
                    Err(mpsc::RecvError) => return None,
                }
            }
            None
        });
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|r| r.expect("all results received"))
            .collect()
    }

    /// Fault-contained [`Pool::par_map`]: each task runs under
    /// `catch_unwind`, so a panicking task becomes `Err(TaskPanic)` in
    /// its own slot while every other task still completes and returns
    /// in input order. Use this when one bad item must not abort the
    /// batch (e.g. the `repro` experiment fleet).
    pub fn par_try_map<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_try_map_emit(items, f, |_, _| {})
    }

    /// [`Pool::par_try_map`] with the ordered streaming sink of
    /// [`Pool::par_map_emit`]: `emit` observes each slot — `Ok` result
    /// or contained panic — on the caller's thread, in input order.
    ///
    /// The default panic hook still runs for contained panics (so the
    /// message also appears on stderr); install a quieter hook if that
    /// is unwanted.
    pub fn par_try_map_emit<T, R, F, E>(
        &self,
        items: &[T],
        f: F,
        emit: E,
    ) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        E: FnMut(usize, &Result<R, TaskPanic>),
    {
        self.par_map_emit(
            items,
            |i, item| {
                catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| TaskPanic {
                    index: i,
                    message: panic_message(payload.as_ref()),
                })
            },
            emit,
        )
    }

    /// [`Pool::par_try_map`] with bounded retry and quarantine: a
    /// panicking task is re-run (in input order, after the batch) up to
    /// `max_attempts` times total; a task that panics on every attempt is
    /// quarantined — `Err(Quarantined)` in its own slot — while the rest
    /// of the batch completes.
    ///
    /// Every attempt first probes the [`mcp_chaos`] task injection site
    /// `(site, index, attempt)`, so an armed fault plan can inject panics
    /// and stalls here. Decisions are keyed on those logical coordinates
    /// (never threads or time) and injected faults clear after the plan's
    /// `max_consecutive` attempts, so as long as `max_attempts` exceeds
    /// that bound the result is identical at every worker count, faults
    /// or not — only a genuinely deterministic failure is quarantined.
    pub fn par_try_map_retry<T, R, F>(
        &self,
        site: &str,
        max_attempts: u32,
        items: &[T],
        f: F,
    ) -> Vec<Result<R, Quarantined>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_try_map_retry_emit(site, max_attempts, items, f, |_, _| {})
    }

    /// [`Pool::par_try_map_retry`] with an ordered streaming sink.
    ///
    /// `emit` observes every slot exactly once, in input order, on the
    /// caller's thread. While the first round is running, final `Ok`
    /// slots stream as they complete; emission stalls at the first
    /// failed slot (its fate is unknown until the retry rounds resolve
    /// it) and the tail is flushed once every slot is final.
    pub fn par_try_map_retry_emit<T, R, F, E>(
        &self,
        site: &str,
        max_attempts: u32,
        items: &[T],
        f: F,
        mut emit: E,
    ) -> Vec<Result<R, Quarantined>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        E: FnMut(usize, Result<&R, &Quarantined>),
    {
        let max_attempts = max_attempts.max(1);
        let n = items.len();
        let mut slots: Vec<Option<Result<R, Quarantined>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut emitted = 0usize;
        let mut stalled = false;
        let round0 = self.par_try_map_emit(
            items,
            |i, item| {
                mcp_chaos::task_point(site, i as u64, 0);
                f(i, item)
            },
            |i, slot| match slot {
                Ok(r) if !stalled => {
                    emit(i, Ok(r));
                    emitted = i + 1;
                }
                _ => stalled = true,
            },
        );
        let mut pending: Vec<usize> = Vec::new();
        for (i, slot) in round0.into_iter().enumerate() {
            match slot {
                Ok(r) => slots[i] = Some(Ok(r)),
                Err(p) if max_attempts == 1 => {
                    slots[i] = Some(Err(Quarantined {
                        index: i,
                        attempts: 1,
                        last: p,
                    }))
                }
                Err(_) => pending.push(i),
            }
        }
        for attempt in 1..max_attempts {
            if pending.is_empty() {
                break;
            }
            let round = self.par_try_map(&pending, |_, &orig| {
                mcp_chaos::task_point(site, orig as u64, attempt);
                f(orig, &items[orig])
            });
            let mut still = Vec::new();
            for (slot, &orig) in round.into_iter().zip(&pending) {
                match slot {
                    Ok(r) => slots[orig] = Some(Ok(r)),
                    Err(p) if attempt + 1 == max_attempts => {
                        slots[orig] = Some(Err(Quarantined {
                            index: orig,
                            attempts: max_attempts,
                            last: TaskPanic {
                                index: orig,
                                message: p.message,
                            },
                        }))
                    }
                    Err(_) => still.push(orig),
                }
            }
            pending = still;
        }
        let out: Vec<Result<R, Quarantined>> = slots
            .into_iter()
            .map(|s| s.expect("every slot resolved"))
            .collect();
        for (i, slot) in out.iter().enumerate().skip(emitted) {
            emit(i, slot.as_ref());
        }
        out
    }

    /// Map a seeded batch: task `i` runs `f(derive_seed(master, i), i,
    /// &items[i])`. The standard shape for randomized sweeps — the
    /// random stream of each task depends only on `(master, i)`.
    pub fn par_map_seeded<T, R, F>(&self, master: u64, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(u64, usize, &T) -> R + Sync,
    {
        self.par_map(items, |i, item| f(derive_seed(master, i as u64), i, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        for jobs in 1..=8 {
            let items: Vec<usize> = (0..97).collect();
            let got = Pool::new(jobs).par_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            let want: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(4);
        assert_eq!(pool.par_map(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(pool.par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_chunks_cover_every_index() {
        // n deliberately not divisible by workers * 4.
        let items: Vec<usize> = (0..101).collect();
        let got = Pool::new(3).par_map(&items, |_, &x| x);
        assert_eq!(got, items);
    }

    #[test]
    fn emit_runs_in_input_order_on_caller_thread() {
        let caller = std::thread::current().id();
        let items: Vec<usize> = (0..64).collect();
        let mut emitted = Vec::new();
        Pool::new(4).par_map_emit(
            &items,
            |_, &x| x,
            |i, &r| {
                assert_eq!(std::thread::current().id(), caller);
                assert_eq!(i, r);
                emitted.push(i);
            },
        );
        assert_eq!(emitted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn nested_par_map_degrades_to_sequential() {
        let outer: Vec<usize> = (0..8).collect();
        let got = Pool::new(4).par_map(&outer, |_, &x| {
            // Inside a worker: must still be correct (and sequential).
            let inner: Vec<usize> = (0..5).collect();
            Pool::new(4)
                .par_map(&inner, |_, &y| x * 10 + y)
                .iter()
                .sum::<usize>()
        });
        let want: Vec<usize> = outer.iter().map(|&x| 5 * x * 10 + 10).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..32).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            Pool::new(4).par_map(&items, |_, &x| {
                if x == 13 {
                    panic!("task 13 failed");
                }
                x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn par_try_map_contains_panics_at_every_pool_size() {
        let items: Vec<usize> = (0..33).collect();
        let poison = [0usize, 7, 13, 14, 32]; // ends, middle, adjacent pair
        for jobs in 1..=8 {
            let got = Pool::new(jobs).par_try_map(&items, |_, &x| {
                if poison.contains(&x) {
                    panic!("boom {x}");
                }
                x * 2
            });
            assert_eq!(got.len(), items.len(), "jobs={jobs}: no slot lost");
            for (i, slot) in got.iter().enumerate() {
                if poison.contains(&i) {
                    let err = slot.as_ref().unwrap_err();
                    assert_eq!(err.index, i, "jobs={jobs}");
                    assert_eq!(err.message, format!("boom {i}"), "jobs={jobs}");
                } else {
                    assert_eq!(slot.as_ref().unwrap(), &(i * 2), "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn par_try_map_emit_streams_failures_in_order() {
        let items: Vec<usize> = (0..24).collect();
        let mut seen = Vec::new();
        let got = Pool::new(4).par_try_map_emit(
            &items,
            |_, &x| {
                if x == 5 {
                    panic!("five");
                }
                x
            },
            |i, slot| seen.push((i, slot.is_ok())),
        );
        assert_eq!(seen.len(), 24);
        assert!(seen.iter().enumerate().all(|(i, &(j, _))| i == j));
        assert!(!seen[5].1 && seen[4].1 && seen[6].1);
        assert_eq!(got[5].as_ref().unwrap_err().message, "five");
    }

    #[test]
    fn par_try_map_all_tasks_panicking_still_returns() {
        let items: Vec<usize> = (0..9).collect();
        for jobs in [1usize, 3, 8] {
            let got = Pool::new(jobs).par_try_map(&items, |_, &x| -> usize { panic!("p{x}") });
            assert!(got.iter().all(|r| r.is_err()), "jobs={jobs}");
        }
    }

    #[test]
    fn non_string_panic_payload_is_described() {
        let got = Pool::new(2).par_try_map(&[1u32], |_, _| -> u32 {
            std::panic::panic_any(42i32);
        });
        assert_eq!(
            got[0].as_ref().unwrap_err().message,
            "<non-string panic payload>"
        );
    }

    #[test]
    fn derive_seed_is_pure_and_spreads() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000, "seed collisions within one batch");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn par_map_seeded_matches_sequential_derivation() {
        let items: Vec<u32> = (0..40).collect();
        for jobs in [1usize, 3, 8] {
            let got =
                Pool::new(jobs).par_map_seeded(99, &items, |seed, i, &x| (seed, i as u32 + x));
            for (i, &(seed, v)) in got.iter().enumerate() {
                assert_eq!(seed, derive_seed(99, i as u64));
                assert_eq!(v, 2 * i as u32);
            }
        }
    }

    #[test]
    fn jobs_resolution_clamps_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
        assert!(resolved_jobs() >= 1);
    }
}
